// The chaos harness under ctest (label: chaos): a grid of seeded failure
// schedules must run violation-free and quiesce, the runs must be exactly
// reproducible from their config, and the detection machinery itself is
// tested by injecting the §4.1 bug the overlap checker exists to catch
// (skipping the MASC waiting period) and requiring a replayable violation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "eval/chaos.hpp"

namespace eval {
namespace {

ChaosConfig grid_cell(std::uint64_t seed, int domains) {
  ChaosConfig config;
  config.seed = seed;
  config.domains = domains;
  config.steps = 12;
  config.check_every = 3;
  return config;
}

std::string transcript(const ChaosResult& r) {
  std::string out = "seed " + std::to_string(r.config.seed) + ", " +
                    std::to_string(r.config.domains) + " domains:\n";
  for (const std::string& line : r.schedule) out += "  " + line + "\n";
  for (const ChaosViolation& v : r.violations) {
    out += "  VIOLATION step " + std::to_string(v.step) + " [" +
           v.invariant + "] " + v.subject + ": " + v.detail + "\n";
  }
  if (!r.quiesced) out += "  (network did not quiesce after final heal)\n";
  return out;
}

// ------------------------------------------------------------------ grid

class ChaosGrid : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChaosGrid, RunsViolationFreeAndQuiesces) {
  const auto [domains, seed] = GetParam();
  const ChaosResult r =
      run_chaos(grid_cell(static_cast<std::uint64_t>(seed), domains));
  EXPECT_TRUE(r.passed()) << transcript(r);
  EXPECT_GT(r.checks_run, 0u);
}

// 2 topology sizes x 16 seeds = 32 cells.
INSTANTIATE_TEST_SUITE_P(
    Cells, ChaosGrid,
    ::testing::Combine(::testing::Values(12, 24), ::testing::Range(1, 17)));

// ------------------------------------------------------- chaos + workload

/// A chaos-scale workload: ticks aligned with the step gap, lifetimes
/// short enough that membership churns (and trees join/prune) inside a
/// 12-step run, a couple of flash crowds inside the horizon.
workload::Spec chaos_workload(const ChaosConfig& config) {
  workload::Spec w = workload::Spec::small();
  w.tick_seconds = config.step_gap.to_seconds();
  w.sim_days =
      2.0 * config.steps * config.step_gap.to_seconds() / 86400.0 + 1.0 / 96.0;
  w.groups = 12;
  w.arrivals_per_second = 20.0;
  w.mean_lifetime_seconds = 300.0;
  w.span_base = 8;
  w.flash_crowds = 2;
  w.flash_duration_seconds = 120.0;
  return w;
}

ChaosConfig workload_cell(std::uint64_t seed, int domains) {
  ChaosConfig config = grid_cell(seed, domains);
  config.workload = chaos_workload(config);
  return config;
}

class ChaosWorkloadGrid : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(ChaosWorkloadGrid, RunsViolationFreeWithLiveMembershipChurn) {
  // Every invariant (lease overlap, G-RIB consistency, quiescence) must
  // keep holding while the aggregate member layer drives joins/prunes
  // through the same trees the perturbations are tearing at.
  const auto [domains, seed] = GetParam();
  const ChaosResult r =
      run_chaos(workload_cell(static_cast<std::uint64_t>(seed), domains));
  EXPECT_TRUE(r.passed()) << transcript(r);
  EXPECT_GT(r.checks_run, 0u);
  EXPECT_GT(r.workload_ticks, 0);
  EXPECT_GT(r.workload_members, 0u)
      << "workload never built membership — the layer is inert";
}

// 2 topology sizes x 8 seeds = 16 cells (chaos label: nightly budget).
INSTANTIATE_TEST_SUITE_P(
    Cells, ChaosWorkloadGrid,
    ::testing::Combine(::testing::Values(12, 24), ::testing::Range(1, 9)));

// --------------------------------------------------------------- determinism

TEST(ChaosDeterminism, EqualConfigsProduceEqualRuns) {
  const ChaosConfig config = grid_cell(5, 16);
  const ChaosResult a = run_chaos(config);
  const ChaosResult b = run_chaos(config);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.events_run, b.events_run);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.quiesced, b.quiesced);
}

TEST(ChaosDeterminism, WorkloadRunsReplayToTheSameEngineDigest) {
  const ChaosConfig config = workload_cell(5, 16);
  const ChaosResult a = run_chaos(config);
  const ChaosResult b = run_chaos(config);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.events_run, b.events_run);
  EXPECT_EQ(a.workload_members, b.workload_members);
  EXPECT_EQ(a.workload_ticks, b.workload_ticks);
  ASSERT_NE(a.workload_engine_digest, 0u);
  EXPECT_EQ(a.workload_engine_digest, b.workload_engine_digest);
}

// ----------------------------------------------------------- fault injection

ChaosConfig injected_cell(std::uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  config.domains = 16;
  config.steps = 4;
  config.check_every = 1;  // the overlap window is narrow
  config.inject_skip_waiting_period = true;
  return config;
}

TEST(ChaosInjection, SkippedWaitingPeriodIsCaughtByOverlapChecker) {
  const ChaosResult r = run_chaos(injected_cell(1));
  ASSERT_FALSE(r.violations.empty())
      << "the injected bug went undetected:\n" << transcript(r);
  EXPECT_FALSE(r.passed());
  bool overlap_seen = false;
  for (const ChaosViolation& v : r.violations) {
    if (v.invariant == "masc-overlap") overlap_seen = true;
  }
  EXPECT_TRUE(overlap_seen)
      << "violations found, but none from masc-overlap:\n" << transcript(r);
}

TEST(ChaosInjection, ViolationReplaysExactlyFromSeed) {
  // The {seed, step, schedule} triple a failure dumps must reproduce the
  // identical violations when the config is replayed.
  const ChaosConfig config = injected_cell(2);
  const ChaosResult a = run_chaos(config);
  const ChaosResult b = run_chaos(config);
  ASSERT_FALSE(a.violations.empty());
  ASSERT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.schedule, b.schedule);
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].step, b.violations[i].step);
    EXPECT_EQ(a.violations[i].invariant, b.violations[i].invariant);
    EXPECT_EQ(a.violations[i].subject, b.violations[i].subject);
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail);
  }
}

}  // namespace
}  // namespace eval
