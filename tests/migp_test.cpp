// Tests for the intra-domain multicast protocols (MIGPs): membership
// plumbing, flood-and-prune behaviour, RPF rejection (the driver for BGMP
// encapsulation), RP detours in PIM-SM, CBT bidirectional forwarding, and
// MOSPF shortest-path delivery.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "migp/cbt.hpp"
#include "migp/factory.hpp"
#include "migp/flood_prune.hpp"
#include "migp/mospf.hpp"
#include "migp/pim_sm.hpp"
#include "net/ip.hpp"

namespace migp {
namespace {

using net::Ipv4Addr;

const Group kGroup = Ipv4Addr::parse("224.0.128.1");
const Ipv4Addr kExternalSource = Ipv4Addr::parse("10.9.0.1");
const Ipv4Addr kLocalSource = Ipv4Addr::parse("10.1.0.7");

// Internal topology used throughout:
//
//      0 ---- 1 ---- 2      borders: 0 and 4
//      |             |
//      3 ----------- 4
//
// Distances: 0..2 = 2 (via 1), 0..4 = 2 (via 3), 2..4 = 1.
topology::Graph line_graph() {
  topology::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  return g;
}

const std::vector<RouterId> kBorders{0, 4};

// RPF resolver: every external source exits via border 0.
RouterId exit_via_zero(Ipv4Addr) { return 0; }

class CountingListener final : public MembershipListener {
 public:
  void on_group_present(Group) override { ++present; }
  void on_group_absent(Group) override { ++absent; }
  int present = 0;
  int absent = 0;
};

bool contains(const std::vector<RouterId>& v, RouterId r) {
  return std::find(v.begin(), v.end(), r) != v.end();
}

// ------------------------------------------------------- shared behaviour

class EveryMigpTest : public ::testing::TestWithParam<Protocol> {
 protected:
  std::unique_ptr<Migp> make() {
    return make_migp(GetParam(), line_graph(), kBorders, exit_via_zero);
  }
};

TEST_P(EveryMigpTest, MembershipTransitionsFireListener) {
  auto migp = make();
  CountingListener listener;
  migp->set_listener(&listener);
  EXPECT_FALSE(migp->has_members(kGroup));
  migp->host_join(2, kGroup);
  EXPECT_EQ(listener.present, 1);
  migp->host_join(3, kGroup);
  EXPECT_EQ(listener.present, 1);  // only the first join fires
  EXPECT_TRUE(migp->has_members(kGroup));
  EXPECT_TRUE(migp->router_has_members(2, kGroup));
  EXPECT_FALSE(migp->router_has_members(1, kGroup));
  migp->host_leave(2, kGroup);
  EXPECT_EQ(listener.absent, 0);
  migp->host_leave(3, kGroup);
  EXPECT_EQ(listener.absent, 1);
  EXPECT_FALSE(migp->has_members(kGroup));
}

TEST_P(EveryMigpTest, UnbalancedLeaveThrows) {
  auto migp = make();
  EXPECT_THROW(migp->host_leave(2, kGroup), std::logic_error);
  migp->host_join(2, kGroup);
  EXPECT_THROW(migp->host_leave(1, kGroup), std::logic_error);
}

TEST_P(EveryMigpTest, BorderJoinRequiresBorderRouter) {
  auto migp = make();
  EXPECT_THROW(migp->border_join(1, kGroup), std::invalid_argument);
  migp->border_join(4, kGroup);
  EXPECT_THROW(migp->border_leave(0, kGroup), std::logic_error);
  migp->border_leave(4, kGroup);
}

TEST_P(EveryMigpTest, DataReachesAllMembers) {
  auto migp = make();
  migp->host_join(1, kGroup);
  migp->host_join(3, kGroup);
  // Two packets: flood-and-prune protocols settle after the first.
  (void)migp->inject(2, kLocalSource, kGroup, false);
  const DataDelivery d = migp->inject(2, kLocalSource, kGroup, false);
  EXPECT_TRUE(d.rpf_accepted);
  EXPECT_TRUE(contains(d.member_routers, 1));
  EXPECT_TRUE(contains(d.member_routers, 3));
  EXPECT_EQ(d.member_routers.size(), 2u);
}

TEST_P(EveryMigpTest, BorderJoinedRoutersReceiveData) {
  auto migp = make();
  migp->border_join(4, kGroup);
  (void)migp->inject(0, kExternalSource, kGroup, true);
  const DataDelivery d = migp->inject(0, kExternalSource, kGroup, true);
  ASSERT_TRUE(d.rpf_accepted);
  EXPECT_TRUE(contains(d.border_routers, 4));
}

TEST_P(EveryMigpTest, UnicastHopsAreShortestPaths) {
  auto migp = make();
  EXPECT_EQ(migp->unicast_hops(0, 4), 2);
  EXPECT_EQ(migp->unicast_hops(2, 4), 1);
  EXPECT_EQ(migp->unicast_hops(3, 3), 0);
}

TEST_P(EveryMigpTest, RejectsBadRouterIds) {
  auto migp = make();
  EXPECT_THROW(migp->host_join(99, kGroup), std::out_of_range);
  EXPECT_THROW((void)migp->inject(99, kLocalSource, kGroup, false),
               std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, EveryMigpTest,
                         ::testing::Values(Protocol::kDvmrp, Protocol::kPimDm,
                                           Protocol::kPimSm, Protocol::kCbt,
                                           Protocol::kMospf),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kDvmrp: return "Dvmrp";
                             case Protocol::kPimDm: return "PimDm";
                             case Protocol::kPimSm: return "PimSm";
                             case Protocol::kCbt: return "Cbt";
                             case Protocol::kMospf: return "Mospf";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------- flood & prune

TEST(FloodPrune, FirstPacketFloodsEverywhere) {
  FloodPruneMigp migp(FloodPruneMigp::Flavor::kDvmrp, line_graph(), kBorders,
                      exit_via_zero);
  migp.host_join(1, kGroup);
  const DataDelivery first = migp.inject(2, kLocalSource, kGroup, false);
  EXPECT_TRUE(first.flooded);
  EXPECT_EQ(migp.flood_count(), 1);
  // Flood reaches every border router (paper §5: "reach all the border
  // routers"), even without border_join state.
  EXPECT_TRUE(contains(first.border_routers, 0));
  EXPECT_TRUE(contains(first.border_routers, 4));
  EXPECT_EQ(first.internal_hops, 5);  // all edges

  const DataDelivery second = migp.inject(2, kLocalSource, kGroup, false);
  EXPECT_FALSE(second.flooded);
  EXPECT_EQ(migp.flood_count(), 1);
  // After prunes, only the member router is served: 2→1 is one hop.
  EXPECT_TRUE(second.border_routers.empty());
  EXPECT_EQ(second.internal_hops, 1);
}

TEST(FloodPrune, EachSourceGroupFloodsIndependently) {
  FloodPruneMigp migp(FloodPruneMigp::Flavor::kPimDm, line_graph(), kBorders,
                      exit_via_zero);
  (void)migp.inject(2, kLocalSource, kGroup, false);
  (void)migp.inject(2, Ipv4Addr::parse("10.1.0.8"), kGroup, false);
  (void)migp.inject(2, kLocalSource, Ipv4Addr::parse("224.0.128.2"), false);
  EXPECT_EQ(migp.flood_count(), 3);
}

TEST(FloodPrune, ExternalDataRejectedAtWrongBorder) {
  // §5.3's scenario: data from an external source enters at border 4, but
  // the best exit toward the source is border 0 → internal RPF checks
  // fail and the packet is dropped (BGMP must encapsulate to border 0).
  FloodPruneMigp migp(FloodPruneMigp::Flavor::kDvmrp, line_graph(), kBorders,
                      exit_via_zero);
  migp.host_join(1, kGroup);
  const DataDelivery wrong = migp.inject(4, kExternalSource, kGroup, true);
  EXPECT_FALSE(wrong.rpf_accepted);
  EXPECT_TRUE(wrong.member_routers.empty());
  const DataDelivery right = migp.inject(0, kExternalSource, kGroup, true);
  EXPECT_TRUE(right.rpf_accepted);
  EXPECT_TRUE(contains(right.member_routers, 1) || right.flooded);
}

TEST(FloodPrune, LocalSourceNeverRpfRejected) {
  FloodPruneMigp migp(FloodPruneMigp::Flavor::kDvmrp, line_graph(), kBorders,
                      exit_via_zero);
  const DataDelivery d = migp.inject(3, kLocalSource, kGroup, false);
  EXPECT_TRUE(d.rpf_accepted);
}

// ----------------------------------------------------------------- PIM-SM

TEST(PimSm, DataDetoursViaRp) {
  PimSmMigp migp(line_graph(), kBorders, exit_via_zero);
  migp.set_rp(kGroup, 0);
  migp.host_join(2, kGroup);
  // Sender at 4: register to RP 0 (2 hops) + shared tree 0→2 (2 hops).
  const DataDelivery d = migp.inject(4, kLocalSource, kGroup, false);
  EXPECT_TRUE(contains(d.member_routers, 2));
  EXPECT_EQ(d.internal_hops, 4);
  EXPECT_EQ(migp.register_count(), 1);
  // Direct path 4→2 would be 1 hop: the unidirectional-tree penalty.
}

TEST(PimSm, DefaultRpIsDeterministicHash) {
  PimSmMigp migp(line_graph(), kBorders, exit_via_zero);
  const RouterId rp = migp.rp_for(kGroup);
  EXPECT_EQ(rp, migp.rp_for(kGroup));
  EXPECT_EQ(rp, kGroup.value() % 5);
}

TEST(PimSm, SptSwitchoverUsesShortestPathAfterFirstPacket) {
  PimSmMigp migp(line_graph(), kBorders, exit_via_zero,
                 /*spt_switchover=*/true);
  migp.set_rp(kGroup, 0);
  migp.host_join(2, kGroup);
  const DataDelivery via_rp = migp.inject(4, kLocalSource, kGroup, false);
  EXPECT_EQ(via_rp.internal_hops, 4);
  const DataDelivery direct = migp.inject(4, kLocalSource, kGroup, false);
  EXPECT_EQ(direct.internal_hops, 1);  // 4→2 directly
  EXPECT_TRUE(contains(direct.member_routers, 2));
}

TEST(PimSm, SenderAtRpPaysNoRegister) {
  PimSmMigp migp(line_graph(), kBorders, exit_via_zero);
  migp.set_rp(kGroup, 3);
  migp.host_join(0, kGroup);
  const DataDelivery d = migp.inject(3, kLocalSource, kGroup, false);
  EXPECT_EQ(migp.register_count(), 0);
  EXPECT_EQ(d.internal_hops, 1);  // 3→0 on the shared tree
}

// -------------------------------------------------------------------- CBT

TEST(Cbt, BidirectionalFlowSkipsTheCoreWhenPossible) {
  CbtMigp migp(line_graph(), kBorders, exit_via_zero);
  migp.set_core(kGroup, 0);
  migp.host_join(2, kGroup);
  migp.host_join(4, kGroup);
  // Tree: 2→1→0 and 4→3→0 (member-to-core paths) = 4 edges.
  // A sender at 1 (on-tree) reaches both members without a core detour:
  // bidirectional flow over the 4 tree edges.
  const DataDelivery d = migp.inject(1, kLocalSource, kGroup, false);
  EXPECT_TRUE(contains(d.member_routers, 2));
  EXPECT_TRUE(contains(d.member_routers, 4));
  EXPECT_EQ(d.internal_hops, 4);
}

TEST(Cbt, OffTreeSenderForwardsTowardCore) {
  CbtMigp migp(line_graph(), kBorders, exit_via_zero);
  migp.set_core(kGroup, 0);
  migp.host_join(3, kGroup);
  // Tree: 3→0 (1 edge). Sender at 2: path toward core 2→1→0 joins the
  // tree at 0 (2 hops), then 1 tree edge.
  const DataDelivery d = migp.inject(2, kLocalSource, kGroup, false);
  EXPECT_TRUE(contains(d.member_routers, 3));
  EXPECT_EQ(d.internal_hops, 3);
}

TEST(Cbt, CoreOverrideAndDefaultHash) {
  CbtMigp migp(line_graph(), kBorders, exit_via_zero);
  EXPECT_EQ(migp.core_for(kGroup), kGroup.value() % 5);
  migp.set_core(kGroup, 2);
  EXPECT_EQ(migp.core_for(kGroup), 2u);
  EXPECT_THROW(migp.set_core(kGroup, 50), std::out_of_range);
}

// ------------------------------------------------------------------ MOSPF

TEST(Mospf, DeliversAlongShortestPathsWithoutFlooding) {
  MospfMigp migp(line_graph(), kBorders, exit_via_zero);
  migp.host_join(1, kGroup);
  migp.host_join(4, kGroup);
  const DataDelivery d = migp.inject(0, kExternalSource, kGroup, true);
  EXPECT_TRUE(d.rpf_accepted);
  EXPECT_FALSE(d.flooded);
  EXPECT_TRUE(contains(d.member_routers, 1));
  EXPECT_TRUE(contains(d.member_routers, 4));
  // 0→1 (1 edge) plus 0→3→4 (2 edges) = 3.
  EXPECT_EQ(d.internal_hops, 3);
}

TEST(Mospf, MembershipChangesCostFloodedLsas) {
  MospfMigp migp(line_graph(), kBorders, exit_via_zero);
  EXPECT_EQ(migp.membership_flood_cost(), 0);
  migp.host_join(1, kGroup);
  EXPECT_EQ(migp.membership_flood_cost(), 5);
  migp.host_leave(1, kGroup);
  EXPECT_EQ(migp.membership_flood_cost(), 10);
}

TEST(Mospf, AcceptsExternalDataAtAnyBorder) {
  MospfMigp migp(line_graph(), kBorders, exit_via_zero);
  migp.host_join(1, kGroup);
  const DataDelivery d = migp.inject(4, kExternalSource, kGroup, true);
  EXPECT_TRUE(d.rpf_accepted);
  EXPECT_TRUE(contains(d.member_routers, 1));
}

// ---------------------------------------------------------------- factory

TEST(Factory, ParsesAllNames) {
  EXPECT_EQ(parse_protocol("dvmrp"), Protocol::kDvmrp);
  EXPECT_EQ(parse_protocol("pim-dm"), Protocol::kPimDm);
  EXPECT_EQ(parse_protocol("pim-sm"), Protocol::kPimSm);
  EXPECT_EQ(parse_protocol("cbt"), Protocol::kCbt);
  EXPECT_EQ(parse_protocol("mospf"), Protocol::kMospf);
  EXPECT_THROW((void)parse_protocol("ospf"), std::invalid_argument);
}

TEST(Factory, BuildsNamedProtocols) {
  auto migp = make_migp(Protocol::kCbt, line_graph(), kBorders, nullptr);
  EXPECT_EQ(migp->protocol_name(), "CBT");
}

TEST(Factory, RejectsDisconnectedOrEmptyGraphs) {
  topology::Graph disconnected(3);
  disconnected.add_edge(0, 1);
  EXPECT_THROW(
      (void)make_migp(Protocol::kDvmrp, disconnected, {0}, exit_via_zero),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_migp(Protocol::kDvmrp, topology::Graph{}, {}, exit_via_zero),
      std::invalid_argument);
}

}  // namespace
}  // namespace migp
