// Determinism regression: two runs of the same mid-size scenario with the
// same seed must agree byte-for-byte — metrics snapshot JSON, every
// domain's final RIBs, and the MASC allocation state. Guards the
// simulation's reproducibility against accidental ordering dependence in
// the batched-update and lazy-cancel plumbing (iteration order of pending
// maps, heap tie-breaks, cache effects).
//
// The parallel executor extends the contract across execution widths: at
// any --threads value the event schedule — and therefore every RIB line
// and every protocol metric — must be byte-identical to the serial run.
// Only the executor's own book-keeping instruments may differ between
// widths (see kThreadDependentMetrics).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/speaker.hpp"
#include "core/domain.hpp"
#include "core/internet.hpp"
#include "eval/scenario.hpp"
#include "masc/node.hpp"
#include "net/prefix.hpp"
#include "obs/metrics.hpp"
#include "workload/session.hpp"

namespace core {
namespace {

struct RunResult {
  std::string metrics_json;
  /// metrics_json minus the executor book-keeping instruments that
  /// legitimately vary with execution width.
  std::string portable_metrics_json;
  /// Schedule-derived executor counters: identical between runs at the
  /// same width (unlike the wall-clock idle gauge and the slot-pool
  /// high-water, which depend on worker interleaving).
  std::uint64_t shard_window_advances = 0;
  std::uint64_t cross_shard_messages = 0;
  double partition_cut_edges = 0.0;
  /// Per domain: "<name> U:<unicast rib> G:<group rib> P:<held prefixes>".
  std::vector<std::string> domains;
};

/// Instruments whose values depend on the execution width (shard count,
/// window count, idle time, partition shape) or on how the queue grew
/// under parallel slot allocation. Everything else — every protocol
/// counter, gauge, histogram and sharded instrument — must match the
/// serial run exactly.
constexpr std::string_view kThreadDependentMetrics[] = {
    "net.event_queue_high_water",  "net.shard_window_advances",
    "net.cross_shard_messages",    "sim.shard_idle_seconds",
    "core.partition_cut_edges",
};

std::string portable_json(obs::Snapshot snapshot) {
  std::erase_if(snapshot.samples, [](const obs::Sample& s) {
    return std::find(std::begin(kThreadDependentMetrics),
                     std::end(kThreadDependentMetrics),
                     s.name) != std::end(kThreadDependentMetrics);
  });
  std::ostringstream json;
  snapshot.write_json(json);
  return json.str();
}

RunResult run_once(std::uint64_t seed, int threads = 1) {
  Internet net(seed);
  net.set_threads(threads);
  constexpr int kTops = 3;
  constexpr int kDomains = 12;
  std::vector<Domain*> tops;
  std::vector<Domain*> children;
  for (int i = 0; i < kDomains; ++i) {
    Domain& d = net.add_domain(
        {.id = static_cast<bgp::DomainId>(i + 1),
         .name = (i < kTops ? "T" : "C") + std::to_string(i + 1)});
    d.announce_unicast();
    (i < kTops ? tops : children).push_back(&d);
  }
  for (int i = 0; i < kTops; ++i) {
    net.link(*tops[i], *tops[(i + 1) % kTops]);
    for (int j = i + 1; j < kTops; ++j) net.masc_siblings(*tops[i], *tops[j]);
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    Domain& parent = *tops[i % kTops];
    net.link(parent, *children[i], bgp::Relationship::kCustomer);
    net.masc_parent(*children[i], parent);
  }

  for (Domain* t : tops) {
    t->masc_node().set_spaces({net::multicast_space()});
    t->masc_node().request_space(65536);
  }
  net.settle();
  for (Domain* c : children) c->masc_node().request_space(256);
  net.settle();

  // Group lifetime plus a perturbation, to exercise the batched-update
  // reconvergence path.
  std::vector<std::pair<Domain*, Group>> live;
  for (Domain* c : children) {
    auto lease = c->create_group();
    if (!lease.has_value()) {
      net.settle();
      lease = c->create_group();
    }
    if (lease.has_value()) live.emplace_back(c, lease->address);
  }
  net.settle();
  for (std::size_t i = 0; i < live.size(); ++i) {
    net.domain((i * 5 + 1) % kDomains).host_join(live[i].second);
  }
  net.settle();
  net.set_link_state(*tops[0], *tops[1], false);
  net.settle();
  net.set_link_state(*tops[0], *tops[1], true);
  net.settle();
  for (auto& [root, group] : live) root->send(group);
  net.settle();

  RunResult result;
  const obs::Snapshot snapshot = net.metrics_snapshot();
  std::ostringstream json;
  snapshot.write_json(json);
  result.metrics_json = json.str();
  result.portable_metrics_json = portable_json(snapshot);
  result.shard_window_advances =
      snapshot.counter_value("net.shard_window_advances");
  result.cross_shard_messages =
      snapshot.counter_value("net.cross_shard_messages");
  result.partition_cut_edges =
      snapshot.gauge_value("core.partition_cut_edges");
  for (std::size_t i = 0; i < net.domain_count(); ++i) {
    Domain& d = net.domain(i);
    std::ostringstream line;
    line << d.name();
    line << " U:";
    for (const auto& [p, r] :
         d.speaker().rib(bgp::RouteType::kUnicast).best_routes()) {
      line << p.to_string() << "<as" << r.origin_as << "," << r.as_path.size()
           << ">";
    }
    line << " G:";
    for (const auto& [p, r] :
         d.speaker().rib(bgp::RouteType::kGroup).best_routes()) {
      line << p.to_string() << "<as" << r.origin_as << "," << r.as_path.size()
           << ">";
    }
    line << " P:";
    for (const auto& held : d.masc_node().pool().prefixes()) {
      line << held.prefix.to_string() << ";";
    }
    result.domains.push_back(line.str());
  }
  return result;
}

TEST(Determinism, SameSeedRunsAreByteIdentical) {
  const RunResult a = run_once(21);
  const RunResult b = run_once(21);
  ASSERT_EQ(a.domains.size(), b.domains.size());
  for (std::size_t i = 0; i < a.domains.size(); ++i) {
    EXPECT_EQ(a.domains[i], b.domains[i]) << "domain " << i;
  }
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(Determinism, ParallelRunsMatchTheSerialScheduleByteForByte) {
  // The tentpole contract: {1, 2, 4, 8} execution widths produce the same
  // RIB lines and — outside the executor's own instruments — the same
  // metrics JSON, for multiple seeds.
  for (const std::uint64_t seed : {21u, 22u}) {
    const RunResult serial = run_once(seed, 1);
    for (const int threads : {2, 4, 8}) {
      const RunResult parallel = run_once(seed, threads);
      ASSERT_EQ(serial.domains.size(), parallel.domains.size());
      for (std::size_t i = 0; i < serial.domains.size(); ++i) {
        EXPECT_EQ(serial.domains[i], parallel.domains[i])
            << "seed " << seed << " threads " << threads << " domain " << i;
      }
      EXPECT_EQ(serial.portable_metrics_json, parallel.portable_metrics_json)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(Determinism, SameWidthParallelRunsAreByteIdentical) {
  // Two runs at the same width must agree on everything deterministic:
  // the portable snapshot plus the schedule-derived executor counters.
  // (The idle gauge is wall-clock-derived and the slot-pool high-water
  // depends on worker interleaving; those two alone may differ.)
  const RunResult a = run_once(21, 4);
  const RunResult b = run_once(21, 4);
  ASSERT_EQ(a.domains.size(), b.domains.size());
  for (std::size_t i = 0; i < a.domains.size(); ++i) {
    EXPECT_EQ(a.domains[i], b.domains[i]) << "domain " << i;
  }
  EXPECT_EQ(a.portable_metrics_json, b.portable_metrics_json);
  EXPECT_EQ(a.shard_window_advances, b.shard_window_advances);
  EXPECT_EQ(a.cross_shard_messages, b.cross_shard_messages);
  EXPECT_EQ(a.partition_cut_edges, b.partition_cut_edges);
}

/// A scenario run with the aggregate workload attached: the engine's
/// churn is applied on the coordinator between event quanta, so its
/// digest, the converged RIBs and every portable metric must be
/// byte-identical at any execution width.
struct WorkloadRun {
  std::string portable_metrics_json;
  std::uint64_t rib_digest = 0;
  std::uint64_t engine_digest = 0;
  std::uint64_t members = 0;
  std::uint64_t tree_joins = 0;
};

WorkloadRun run_workload_once(std::uint64_t seed, int threads) {
  Internet net(seed);
  net.set_threads(threads);
  eval::ScenarioSpec spec;
  spec.domains = 24;
  spec.seed = seed;
  spec.groups = 6;
  spec.joins = 2;
  spec.workload = workload::Spec::small();
  spec.workload.groups = 12;
  spec.workload.sim_days = 1.0 / 24.0;  // 30 ticks of 120 s
  const eval::BuiltScenario topo = eval::build_scenario(net, spec);
  eval::phase_claim(net, topo);
  net::Rng rng = eval::make_workload_rng(spec.seed);
  (void)eval::phase_groups(net, spec, topo, rng);
  std::unique_ptr<workload::Session> session =
      eval::phase_workload(net, spec, topo);
  WorkloadRun result;
  if (session != nullptr) {
    session->run();
    const workload::SessionReport report = session->report();
    result.engine_digest = report.engine_digest;
    result.members = report.members_total;
    result.tree_joins = report.tree_joins;
  }
  result.rib_digest = eval::rib_digest(net);
  result.portable_metrics_json = portable_json(net.metrics_snapshot());
  return result;
}

TEST(Determinism, WorkloadRunsAreByteIdenticalAcrossThreadWidths) {
  for (const std::uint64_t seed : {3u, 9u}) {
    const WorkloadRun serial = run_workload_once(seed, 1);
    ASSERT_GT(serial.members, 0u) << "seed " << seed;
    ASSERT_GT(serial.tree_joins, 0u) << "seed " << seed;
    for (const int threads : {2, 4, 8}) {
      const WorkloadRun parallel = run_workload_once(seed, threads);
      EXPECT_EQ(serial.engine_digest, parallel.engine_digest)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial.rib_digest, parallel.rib_digest)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial.portable_metrics_json, parallel.portable_metrics_json)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(Determinism, DifferentSeedsStillConvergeToEquivalentTopology) {
  // Seeds change timing jitter, not the converged outcome: every domain
  // ends up holding address space and the same number of RIB entries.
  const RunResult a = run_once(21);
  const RunResult c = run_once(22);
  ASSERT_EQ(a.domains.size(), c.domains.size());
  for (std::size_t i = 0; i < a.domains.size(); ++i) {
    EXPECT_FALSE(a.domains[i].empty());
    EXPECT_FALSE(c.domains[i].empty());
  }
}

}  // namespace
}  // namespace core
