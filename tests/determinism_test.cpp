// Determinism regression: two runs of the same mid-size scenario with the
// same seed must agree byte-for-byte — metrics snapshot JSON, every
// domain's final RIBs, and the MASC allocation state. Guards the
// simulation's reproducibility against accidental ordering dependence in
// the batched-update and lazy-cancel plumbing (iteration order of pending
// maps, heap tie-breaks, cache effects).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bgp/speaker.hpp"
#include "core/domain.hpp"
#include "core/internet.hpp"
#include "masc/node.hpp"
#include "net/prefix.hpp"

namespace core {
namespace {

struct RunResult {
  std::string metrics_json;
  /// Per domain: "<name> U:<unicast rib> G:<group rib> P:<held prefixes>".
  std::vector<std::string> domains;
};

RunResult run_once(std::uint64_t seed) {
  Internet net(seed);
  constexpr int kTops = 3;
  constexpr int kDomains = 12;
  std::vector<Domain*> tops;
  std::vector<Domain*> children;
  for (int i = 0; i < kDomains; ++i) {
    Domain& d = net.add_domain(
        {.id = static_cast<bgp::DomainId>(i + 1),
         .name = (i < kTops ? "T" : "C") + std::to_string(i + 1)});
    d.announce_unicast();
    (i < kTops ? tops : children).push_back(&d);
  }
  for (int i = 0; i < kTops; ++i) {
    net.link(*tops[i], *tops[(i + 1) % kTops]);
    for (int j = i + 1; j < kTops; ++j) net.masc_siblings(*tops[i], *tops[j]);
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    Domain& parent = *tops[i % kTops];
    net.link(parent, *children[i], bgp::Relationship::kCustomer);
    net.masc_parent(*children[i], parent);
  }

  for (Domain* t : tops) {
    t->masc_node().set_spaces({net::multicast_space()});
    t->masc_node().request_space(65536);
  }
  net.settle();
  for (Domain* c : children) c->masc_node().request_space(256);
  net.settle();

  // Group lifetime plus a perturbation, to exercise the batched-update
  // reconvergence path.
  std::vector<std::pair<Domain*, Group>> live;
  for (Domain* c : children) {
    auto lease = c->create_group();
    if (!lease.has_value()) {
      net.settle();
      lease = c->create_group();
    }
    if (lease.has_value()) live.emplace_back(c, lease->address);
  }
  net.settle();
  for (std::size_t i = 0; i < live.size(); ++i) {
    net.domain((i * 5 + 1) % kDomains).host_join(live[i].second);
  }
  net.settle();
  net.set_link_state(*tops[0], *tops[1], false);
  net.settle();
  net.set_link_state(*tops[0], *tops[1], true);
  net.settle();
  for (auto& [root, group] : live) root->send(group);
  net.settle();

  RunResult result;
  std::ostringstream json;
  net.metrics_snapshot().write_json(json);
  result.metrics_json = json.str();
  for (std::size_t i = 0; i < net.domain_count(); ++i) {
    Domain& d = net.domain(i);
    std::ostringstream line;
    line << d.name();
    line << " U:";
    for (const auto& [p, r] :
         d.speaker().rib(bgp::RouteType::kUnicast).best_routes()) {
      line << p.to_string() << "<as" << r.origin_as << "," << r.as_path.size()
           << ">";
    }
    line << " G:";
    for (const auto& [p, r] :
         d.speaker().rib(bgp::RouteType::kGroup).best_routes()) {
      line << p.to_string() << "<as" << r.origin_as << "," << r.as_path.size()
           << ">";
    }
    line << " P:";
    for (const auto& held : d.masc_node().pool().prefixes()) {
      line << held.prefix.to_string() << ";";
    }
    result.domains.push_back(line.str());
  }
  return result;
}

TEST(Determinism, SameSeedRunsAreByteIdentical) {
  const RunResult a = run_once(21);
  const RunResult b = run_once(21);
  ASSERT_EQ(a.domains.size(), b.domains.size());
  for (std::size_t i = 0; i < a.domains.size(); ++i) {
    EXPECT_EQ(a.domains[i], b.domains[i]) << "domain " << i;
  }
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(Determinism, DifferentSeedsStillConvergeToEquivalentTopology) {
  // Seeds change timing jitter, not the converged outcome: every domain
  // ends up holding address space and the same number of RIB entries.
  const RunResult a = run_once(21);
  const RunResult c = run_once(22);
  ASSERT_EQ(a.domains.size(), c.domains.size());
  for (std::size_t i = 0; i < a.domains.size(); ++i) {
    EXPECT_FALSE(a.domains[i].empty());
    EXPECT_FALSE(c.domains[i].empty());
  }
}

}  // namespace
}  // namespace core
