// Cross-layer integration tests:
//
//  * protocol-vs-model: trees built by the real BGMP implementation over
//    real BGP must produce exactly the per-receiver path lengths the
//    Figure-4 closed-form models predict (bidirectional and hybrid), when
//    the models are fed the protocol's own converged next hops;
//  * the full MASC→BGP→BGMP pipeline: a group created through the MAAS is
//    rooted at the initiator's domain and reachable end to end;
//  * MASC protocol node vs allocation-level simulation agreement on a
//    small scenario.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/domain.hpp"
#include "core/internet.hpp"
#include "eval/masc_sim.hpp"
#include "eval/tree_model.hpp"
#include "topology/generators.hpp"

namespace core {
namespace {

using net::Ipv4Addr;
using net::Prefix;
using topology::NodeId;

const Group kGroup = Ipv4Addr::parse("224.0.128.1");

// Extracts the converged rootward/sourceward forwarding tree from the
// protocol's RIBs: parent[d] = the domain of d's next hop for `addr` in
// `type`, dist[d] = AS-path length.
topology::BfsTree tree_from_ribs(Internet& net,
                                 const std::vector<Domain*>& domains,
                                 bgp::RouteType type, Ipv4Addr addr,
                                 NodeId root) {
  std::map<const bgp::Speaker*, NodeId> speaker_to_node;
  for (NodeId n = 0; n < domains.size(); ++n) {
    speaker_to_node[&domains[n]->speaker()] = n;
  }
  (void)net;
  topology::BfsTree tree;
  tree.source = root;
  tree.dist.assign(domains.size(), topology::kUnreachable);
  tree.parent.assign(domains.size(), topology::kUnreachable);
  for (NodeId n = 0; n < domains.size(); ++n) {
    const auto hit = domains[n]->speaker().lookup(type, addr);
    if (!hit) continue;
    if (hit->next_hop == nullptr) {
      tree.dist[n] = 0;
      tree.parent[n] = n;
    } else {
      tree.dist[n] = static_cast<std::uint32_t>(hit->route.as_path.size());
      tree.parent[n] = speaker_to_node.at(hit->next_hop);
    }
  }
  return tree;
}

struct HopsLog {
  std::map<const Domain*, std::vector<int>> hops;
  void attach(Internet& net) {
    net.set_delivery_observer([this](const Delivery& d) {
      hops[d.domain].push_back(d.hops);
    });
  }
  void clear() { hops.clear(); }
};

class ProtocolVsModel : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 120;

  void run_check(std::uint64_t seed, bool hybrid) {
    net::Rng rng(seed);
    const topology::Graph graph = topology::make_as_level(kNodes, 2, rng);
    Internet net;
    HopsLog log;
    log.attach(net);
    const std::vector<Domain*> domains = net.build_from_graph(graph);

    eval::GroupScenario scenario;
    scenario.root = static_cast<NodeId>(rng.index(kNodes));
    scenario.source = static_cast<NodeId>(rng.index(kNodes));
    std::set<NodeId> receiver_set;
    while (receiver_set.size() < 15) {
      receiver_set.insert(static_cast<NodeId>(rng.index(kNodes)));
    }
    receiver_set.erase(scenario.source);  // keep hop counts unambiguous
    scenario.receivers.assign(receiver_set.begin(), receiver_set.end());

    domains[scenario.root]->originate_group_range(
        Prefix::parse("224.0.128.0/24"));
    domains[scenario.source]->announce_unicast();
    net.settle();
    for (const NodeId r : scenario.receivers) {
      domains[r]->host_join(kGroup);
    }
    net.settle();

    // Feed the model the protocol's own converged next hops so that
    // equal-cost tie-breaks match exactly.
    const Ipv4Addr source_host = domains[scenario.source]->host_address(1);
    const topology::BfsTree from_root = tree_from_ribs(
        net, domains, bgp::RouteType::kGroup, kGroup, scenario.root);
    const topology::BfsTree from_source =
        tree_from_ribs(net, domains, bgp::RouteType::kMulticast, source_host,
                       scenario.source);
    const eval::TreeModel model(graph, scenario, from_root, from_source);

    std::set<NodeId> branchers;
    if (hybrid) {
      // Rational receivers: build a branch only where the model says it
      // helps (the Figure-4 hybrid-tree policy).
      const auto bidir =
          model.path_lengths(eval::TreeType::kBidirectional);
      const auto hyb = model.path_lengths(eval::TreeType::kHybrid);
      for (std::size_t i = 0; i < scenario.receivers.size(); ++i) {
        if (hyb[i] < bidir[i]) {
          branchers.insert(scenario.receivers[i]);
          domains[scenario.receivers[i]]->build_source_branch(source_host,
                                                              kGroup);
        }
      }
      net.settle();
    }

    log.clear();
    domains[scenario.source]->send(kGroup);
    net.settle();

    // Branch copies serve branchers on their branch paths; the shared
    // tree serves everyone else untouched — the hybrid model exactly.
    (void)branchers;
    const auto expected = model.path_lengths(
        hybrid ? eval::TreeType::kHybrid : eval::TreeType::kBidirectional);
    for (std::size_t i = 0; i < scenario.receivers.size(); ++i) {
      const Domain* d = domains[scenario.receivers[i]];
      const auto it = log.hops.find(d);
      ASSERT_NE(it, log.hops.end())
          << "receiver " << scenario.receivers[i] << " got no data (seed "
          << seed << ")";
      ASSERT_EQ(it->second.size(), 1u)
          << "receiver " << scenario.receivers[i] << " duplicates (seed "
          << seed << ")";
      EXPECT_EQ(it->second[0], static_cast<int>(expected[i]))
          << "receiver " << scenario.receivers[i] << " (seed " << seed
          << ", hybrid=" << hybrid << ")";
    }
  }
};

TEST_F(ProtocolVsModel, BidirectionalTreePathLengthsMatch) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    run_check(seed, /*hybrid=*/false);
  }
}

TEST_F(ProtocolVsModel, HybridTreePathLengthsMatch) {
  for (const std::uint64_t seed : {44u, 55u}) {
    run_check(seed, /*hybrid=*/true);
  }
}

// ----------------------------------------------- full-architecture pipeline

TEST(FullPipeline, MascToMaasToBgmpEndToEnd) {
  // Three domains: top-level T (claims from 224/4), child C (claims from
  // T), plus a remote member domain M. A group created by C's MAAS is
  // rooted in C; a member in M joins and data flows.
  Internet net;
  Domain& t = net.add_domain({.id = 1, .name = "T"});
  Domain& c = net.add_domain({.id = 2, .name = "C"});
  Domain& m = net.add_domain({.id = 3, .name = "M"});
  HopsLog log;
  log.attach(net);
  net.link(t, c, bgp::Relationship::kCustomer);
  net.link(t, m, bgp::Relationship::kLateral);
  net.masc_parent(c, t);
  for (Domain* d : {&t, &c, &m}) d->announce_unicast();

  // Top level claims from the whole multicast space (§4.4).
  t.masc_node().set_spaces({net::multicast_space()});
  t.masc_node().request_space(65536);
  net.settle();
  ASSERT_EQ(t.masc_node().pool().prefixes().size(), 1u);

  // The child's MAAS triggers claiming through MASC on first allocation.
  auto lease = c.create_group();
  EXPECT_FALSE(lease.has_value());  // claim is asynchronous (48h wait)
  net.settle();                     // waiting period elapses
  lease = c.create_group();
  ASSERT_TRUE(lease.has_value());
  const Group group = lease->address;

  // The group's root domain is the initiator's: C self-originates the
  // covering group route. M, beyond the aggregating parent T, sees only
  // T's aggregate (§4.3.2) — packets still reach C through T's
  // more-specific entry.
  const auto at_c = c.speaker().lookup(bgp::RouteType::kGroup, group);
  ASSERT_TRUE(at_c.has_value());
  EXPECT_EQ(at_c->next_hop, nullptr);  // locally rooted
  const auto hit = m.speaker().lookup(bgp::RouteType::kGroup, group);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->route.origin_as, t.id());  // the aggregate

  // A member in M joins; a host in C sends; data arrives.
  m.host_join(group);
  net.settle();
  c.send(group);
  net.settle();
  const auto got = log.hops.find(&m);
  ASSERT_NE(got, log.hops.end());
  EXPECT_EQ(got->second.size(), 1u);
  EXPECT_EQ(got->second[0], 2);  // C → T → M
}

TEST(FullPipeline, GroupRouteAggregationAcrossHierarchy) {
  // T originates its /16; C's /24 claim (inside T's /16) must not be
  // advertised beyond T (§4.3.2).
  Internet net;
  Domain& t = net.add_domain({.id = 1, .name = "T"});
  Domain& c = net.add_domain({.id = 2, .name = "C"});
  Domain& m = net.add_domain({.id = 3, .name = "M"});
  net.link(t, c, bgp::Relationship::kCustomer);
  net.link(t, m, bgp::Relationship::kLateral);
  net.masc_parent(c, t);
  t.masc_node().set_spaces({net::multicast_space()});
  t.masc_node().request_space(65536);
  net.settle();
  c.masc_node().request_space(256);
  net.settle();
  ASSERT_EQ(c.masc_node().pool().prefixes().size(), 1u);
  // M sees exactly one group route: T's aggregate.
  EXPECT_EQ(m.speaker().rib(bgp::RouteType::kGroup).size(), 1u);
  // T holds both (its own /16 and C's more-specific).
  EXPECT_EQ(t.speaker().rib(bgp::RouteType::kGroup).size(), 2u);
}

// -------------------------------------- MASC protocol vs allocation model

TEST(MascLayers, ProtocolAndSimulationAgreeOnClaimChoice) {
  // Same scenario both ways: one top-level domain (deterministic
  // first-fit), one request of 256 addresses from an empty space. The
  // protocol node and the allocation-level machinery must claim the same
  // prefix (both call the shared choose_claim).
  masc::PoolParams pool;
  pool.strategy = masc::ClaimStrategy::kFirstFit;

  // Protocol side.
  net::EventQueue events;
  net::Network network(events);
  masc::MascNode::Params params;
  params.pool = pool;
  masc::MascNode node(network, 1, "X", params, 7);
  std::vector<Prefix> granted;
  node.set_callbacks({[&](const Prefix& p, net::SimTime) {
                        granted.push_back(p);
                      },
                      nullptr,
                      nullptr});
  node.set_spaces({net::multicast_space()});
  node.request_space(256);
  events.run(100000);
  ASSERT_EQ(granted.size(), 1u);

  // Allocation-level side.
  masc::ClaimRegistry registry;
  net::Rng rng(7);
  const auto chosen = masc::choose_claim(
      std::vector<Prefix>{net::multicast_space()}, registry, 24,
      net::SimTime{}, rng, pool.strategy);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(granted[0], *chosen);
}

}  // namespace
}  // namespace core
