// Unit tests for the domain-graph partitioner behind the parallel
// executor (topology/partition.hpp). The executor's correctness argument
// leans on two properties proved here: every domain lands in exactly one
// shard (so each event routes to exactly one run list), and
// min_cut_latency_ns really is the minimum over the cut — the
// conservative lookahead window is only safe if no cross-shard channel is
// faster than it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "topology/partition.hpp"

namespace topology {
namespace {

/// A ring of `n` domains (ids 1..n) with uniform latency, plus optional
/// chord edges supplied by the caller.
std::vector<PartitionEdge> ring_edges(std::uint32_t n,
                                      std::int64_t latency_ns) {
  std::vector<PartitionEdge> edges;
  for (std::uint32_t i = 1; i <= n; ++i) {
    edges.push_back({i, i % n + 1, latency_ns});
  }
  return edges;
}

std::vector<std::uint32_t> ids(std::uint32_t n) {
  std::vector<std::uint32_t> nodes(n);
  for (std::uint32_t i = 0; i < n; ++i) nodes[i] = i + 1;
  return nodes;
}

TEST(Partition, EveryDomainAssignedExactlyOnce) {
  const std::vector<std::uint32_t> nodes = ids(64);
  const PartitionResult part =
      partition_domains(nodes, ring_edges(64, 1'000'000), 4);
  ASSERT_GE(part.shard_count, 2u);
  ASSERT_LE(part.shard_count, 4u);
  // Index 0 (no domain) and any id outside the node set stay unassigned.
  EXPECT_EQ(part.shard(0), PartitionResult::kUnassigned);
  EXPECT_EQ(part.shard(65), PartitionResult::kUnassigned);
  std::vector<std::uint32_t> population(part.shard_count, 0);
  for (const std::uint32_t id : nodes) {
    const std::uint32_t shard = part.shard(id);
    ASSERT_NE(shard, PartitionResult::kUnassigned) << "domain " << id;
    ASSERT_LT(shard, part.shard_count) << "domain " << id;
    ++population[shard];
  }
  // Exactly once: populations sum to the node count, and no shard is
  // empty (an empty shard would mean shard_count lied).
  std::uint32_t total = 0;
  for (const std::uint32_t p : population) {
    EXPECT_GT(p, 0u);
    total += p;
  }
  EXPECT_EQ(total, nodes.size());
}

TEST(Partition, WindowIsTheMinimumCutEdgeLatency) {
  // Two dense cliques joined by two bridges of different latency: the cut
  // must run through the bridges, and the window must equal the FASTER
  // bridge — a window derived from the slower one would let same-window
  // events race across the 2ms channel.
  std::vector<PartitionEdge> edges;
  const auto clique = [&](std::uint32_t lo, std::uint32_t hi) {
    for (std::uint32_t a = lo; a <= hi; ++a) {
      for (std::uint32_t b = a + 1; b <= hi; ++b) {
        edges.push_back({a, b, 1'000'000});
      }
    }
  };
  clique(1, 8);
  clique(9, 16);
  edges.push_back({4, 12, 2'000'000});   // fast bridge
  edges.push_back({8, 16, 50'000'000});  // slow bridge
  const PartitionResult part = partition_domains(ids(16), edges, 2);
  ASSERT_EQ(part.shard_count, 2u);
  ASSERT_FALSE(part.cut_edges.empty());
  std::int64_t min_latency = part.cut_edges.front().latency_ns;
  for (const PartitionEdge& e : part.cut_edges) {
    EXPECT_NE(part.shard(e.a), part.shard(e.b))
        << "cut edge " << e.a << "-" << e.b << " is not actually cut";
    min_latency = std::min(min_latency, e.latency_ns);
  }
  EXPECT_EQ(part.min_cut_latency_ns, min_latency);
  // The intra-clique 1ms edges should all be internal, so the cut runs
  // through the bridges and the window is the fast bridge.
  EXPECT_EQ(part.min_cut_latency_ns, 2'000'000);
}

TEST(Partition, CutEdgesAreExactlyTheCrossShardEdges) {
  const std::vector<PartitionEdge> edges = ring_edges(32, 3'000'000);
  const PartitionResult part = partition_domains(ids(32), edges, 4);
  std::set<std::pair<std::uint32_t, std::uint32_t>> cut;
  for (const PartitionEdge& e : part.cut_edges) {
    cut.emplace(std::min(e.a, e.b), std::max(e.a, e.b));
  }
  for (const PartitionEdge& e : edges) {
    const bool crosses = part.shard(e.a) != part.shard(e.b);
    const bool listed =
        cut.count({std::min(e.a, e.b), std::max(e.a, e.b)}) > 0;
    EXPECT_EQ(crosses, listed) << "edge " << e.a << "-" << e.b;
  }
}

TEST(Partition, DeterministicAcrossCalls) {
  const std::vector<std::uint32_t> nodes = ids(48);
  const std::vector<PartitionEdge> edges = ring_edges(48, 2'000'000);
  const PartitionResult a = partition_domains(nodes, edges, 4);
  const PartitionResult b = partition_domains(nodes, edges, 4);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.shard_count, b.shard_count);
  EXPECT_EQ(a.min_cut_latency_ns, b.min_cut_latency_ns);
  ASSERT_EQ(a.cut_edges.size(), b.cut_edges.size());
}

TEST(Partition, SingleShardHasNoCut) {
  const PartitionResult part =
      partition_domains(ids(8), ring_edges(8, 1'000'000), 1);
  EXPECT_EQ(part.shard_count, 1u);
  EXPECT_TRUE(part.cut_edges.empty());
  EXPECT_EQ(part.min_cut_latency_ns, 0);
}

TEST(Partition, FewerNodesThanShards) {
  const PartitionResult part =
      partition_domains(ids(3), ring_edges(3, 1'000'000), 8);
  EXPECT_LE(part.shard_count, 3u);
  for (std::uint32_t id = 1; id <= 3; ++id) {
    EXPECT_NE(part.shard(id), PartitionResult::kUnassigned);
  }
}

}  // namespace
}  // namespace topology
