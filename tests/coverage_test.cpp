// Additional coverage: network drop-when-down semantics, BGP route-change
// listeners, MASC adjacency claiming and pool aggregation, MascNode ageing
// under periodic renewal, PIM-SM RP pinning through the core glue, and
// branch-copy data semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "bgp/speaker.hpp"
#include "core/domain.hpp"
#include "core/internet.hpp"
#include "masc/claim_algorithm.hpp"
#include "masc/node.hpp"
#include "migp/pim_sm.hpp"
#include "net/event.hpp"
#include "net/network.hpp"

namespace {

using net::Ipv4Addr;
using net::Prefix;
using net::SimTime;

// ------------------------------------------------ network drop semantics

struct TextMsg final : net::Message {
  explicit TextMsg(std::string t) : text(std::move(t)) {}
  std::string text;
  [[nodiscard]] std::string describe() const override { return text; }
};

class Sink final : public net::Endpoint {
 public:
  explicit Sink(std::string n) : name_(std::move(n)) {}
  void on_message(net::ChannelId, std::unique_ptr<net::Message> m) override {
    received.push_back(m->describe());
  }
  [[nodiscard]] std::string name() const override { return name_; }
  std::vector<std::string> received;

 private:
  std::string name_;
};

TEST(NetworkDrop, DropWhenDownLosesMessages) {
  net::EventQueue q;
  net::Network network(q);
  Sink a("a"), b("b");
  const auto ch = network.connect(a, b);
  network.set_drop_when_down(ch, true);
  network.set_up(ch, false);
  network.send(ch, a, std::make_unique<TextMsg>("lost"));
  network.set_up(ch, true);
  network.send(ch, a, std::make_unique<TextMsg>("kept"));
  q.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0], "kept");
  EXPECT_EQ(network.messages_dropped(), 1u);
}

TEST(NetworkDrop, DefaultHoldsMessagesAcrossPartition) {
  net::EventQueue q;
  net::Network network(q);
  Sink a("a"), b("b");
  const auto ch = network.connect(a, b);
  network.set_up(ch, false);
  network.send(ch, a, std::make_unique<TextMsg>("held"));
  network.set_up(ch, true);
  q.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(network.messages_dropped(), 0u);
}

// --------------------------------------------- BGP route-change listener

TEST(RouteChangeListener, FiresOnInstallReplaceAndLoss) {
  net::EventQueue q;
  net::Network network(q);
  bgp::Speaker s1(network, 1, "s1");
  bgp::Speaker s2(network, 2, "s2");
  std::vector<std::pair<bgp::RouteType, Prefix>> events;
  s2.add_route_change_listener(
      [&](bgp::RouteType type, const Prefix& prefix) {
        events.emplace_back(type, prefix);
      });
  const auto ch = bgp::Speaker::connect(s1, s2, bgp::Relationship::kLateral);
  s1.originate(bgp::RouteType::kGroup, Prefix::parse("224.1.0.0/16"));
  q.run();
  ASSERT_EQ(events.size(), 1u);  // install
  EXPECT_EQ(events[0].first, bgp::RouteType::kGroup);
  EXPECT_EQ(events[0].second, Prefix::parse("224.1.0.0/16"));
  network.set_up(ch, false);  // loss
  q.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].second, Prefix::parse("224.1.0.0/16"));
}

TEST(RouteChangeListener, SilentOnNoOpUpdates) {
  net::EventQueue q;
  net::Network network(q);
  bgp::Speaker s1(network, 1, "s1");
  bgp::Speaker s2(network, 2, "s2");
  bgp::Speaker::connect(s1, s2, bgp::Relationship::kLateral);
  s1.originate(bgp::RouteType::kGroup, Prefix::parse("224.1.0.0/16"));
  q.run();
  int fired = 0;
  s2.add_route_change_listener(
      [&](bgp::RouteType, const Prefix&) { ++fired; });
  s1.originate(bgp::RouteType::kGroup,
               Prefix::parse("224.1.0.0/16"));  // idempotent
  q.run();
  EXPECT_EQ(fired, 0);
}

// ------------------------------------------------ MASC adjacency claiming

TEST(ChooseClaimNear, PrefersSpaceAdjacentToOwnPrefixes) {
  masc::ClaimRegistry registry;
  const SimTime now = SimTime::days(1);
  const SimTime later = SimTime::days(31);
  // Own prefix sits at 224.64.0.0/24; a competitor holds space far away.
  ASSERT_TRUE(registry.claim(Prefix::parse("224.64.0.0/24"), 1, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("230.0.0.0/24"), 2, later, now));
  const std::vector<Prefix> own{Prefix::parse("224.64.0.0/24")};
  const std::vector<Prefix> spaces{net::multicast_space()};
  net::Rng rng(5);
  const auto chosen =
      masc::choose_claim_near(own, spaces, registry, 24, now, rng);
  ASSERT_TRUE(chosen.has_value());
  // The nearest free /24 inside the own prefix's parent block.
  EXPECT_EQ(*chosen, Prefix::parse("224.64.1.0/24"));
  // And the pair CIDR-aggregates.
  EXPECT_TRUE(net::aggregate(Prefix::parse("224.64.0.0/24"), *chosen)
                  .has_value());
}

TEST(ChooseClaimNear, FallsBackWhenNeighbourhoodFull) {
  masc::ClaimRegistry registry;
  const SimTime now = SimTime::days(1);
  const SimTime later = SimTime::days(31);
  // Own /24 inside a /8 whose remainder a competitor owns entirely.
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.0.0/24"), 1, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.1.0/24"), 2, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.2.0/23"), 2, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.4.0/22"), 2, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.8.0/21"), 2, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.16.0/20"), 2, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.32.0/19"), 2, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.64.0/18"), 2, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.128.0/17"), 2, later, now));
  ASSERT_TRUE(registry.claim(Prefix::parse("224.1.0.0/16"), 2, later, now));
  const std::vector<Prefix> own{Prefix::parse("224.0.0.0/24")};
  const std::vector<Prefix> spaces{net::multicast_space()};
  net::Rng rng(5);
  const auto chosen =
      masc::choose_claim_near(own, spaces, registry, 24, now, rng);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_TRUE(chosen->length() == 24);
  EXPECT_FALSE(registry.conflicting(*chosen, now).has_value());
}

// ----------------------------------------------- MascNode periodic usage

TEST(MascNodeAging, ActiveRangeRenewsWhileBlocksLive) {
  net::EventQueue events;
  net::Network network(events);
  masc::MascNode::Params params;
  params.claim_lifetime = SimTime::days(30);
  masc::MascNode node(network, 1, "X", params, 9);
  std::vector<Prefix> released;
  node.set_callbacks({nullptr,
                      [&](const Prefix& p) { released.push_back(p); },
                      nullptr});
  node.set_spaces({net::multicast_space()});
  node.request_space(256);
  events.run(100000);
  ASSERT_EQ(node.pool().prefixes().size(), 1u);
  // A long-lived allocation keeps the range alive across its expiry.
  ASSERT_TRUE(node.pool()
                  .request_block(256, events.now(), SimTime::days(365))
                  .has_value());
  events.run_until(events.now() + SimTime::days(40));
  node.age_now();
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(node.pool().prefixes().size(), 1u);
}

// ------------------------------------------------------ PIM-SM RP pinning

TEST(PimSmIntegration, RpPinnedToBestExitRouter) {
  // §5.1: "it might make exit router A3 the Rendezvous-Point". With a
  // PIM-SM domain, the core glue pins the group's RP to the best exit
  // toward the root domain.
  core::Internet net;
  topology::Graph two(2);
  two.add_edge(0, 1);
  core::Domain& root = net.add_domain({.id = 1, .name = "root"});
  core::Domain& member =
      net.add_domain({.id = 2,
                      .name = "member",
                      .protocol = migp::Protocol::kPimSm,
                      .internal_graph = two,
                      .borders = {0, 1}});
  net.link(root, member, bgp::Relationship::kLateral, 0, 0);
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  net.settle();
  const core::Group group = Ipv4Addr::parse("224.0.128.1");
  member.host_join(group, /*at=*/1);
  net.settle();
  auto* pim = dynamic_cast<migp::PimSmMigp*>(&member.migp());
  ASSERT_NE(pim, nullptr);
  // Border 0 peers with the root: it is the exit, hence the RP.
  EXPECT_EQ(pim->rp_for(group), 0u);
}

TEST(PimSmIntegration, DataFlowsThroughPimSmDomain) {
  core::Internet net;
  topology::Graph three(3);
  three.add_edge(0, 1);
  three.add_edge(1, 2);
  core::Domain& root = net.add_domain({.id = 1, .name = "root"});
  core::Domain& mid =
      net.add_domain({.id = 2,
                      .name = "mid",
                      .protocol = migp::Protocol::kPimSm,
                      .internal_graph = three,
                      .borders = {0, 2}});
  core::Domain& leaf = net.add_domain({.id = 3, .name = "leaf"});
  std::map<const core::Domain*, int> copies;
  net.set_delivery_observer(
      [&](const core::Delivery& d) { ++copies[d.domain]; });
  net.link(root, mid, bgp::Relationship::kLateral, 0, 0);
  net.link(mid, leaf, bgp::Relationship::kLateral, 1, 0);
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  root.announce_unicast();
  net.settle();
  const core::Group group = Ipv4Addr::parse("224.0.128.1");
  leaf.host_join(group);
  mid.host_join(group, /*at=*/1);  // member deep inside the PIM-SM domain
  net.settle();
  root.send(group);
  net.settle();
  EXPECT_EQ(copies[&leaf], 1);
  EXPECT_EQ(copies[&mid], 1);
}

// ------------------------------------------------- branch-copy semantics

TEST(BranchCopies, BrancherOnRootwardPathStillServesTree) {
  // source -- brancher -- root, plus member hanging off the root: the
  // brancher domain sits ON the source's rootward path AND holds a branch.
  // Its branch must not swallow the rootward flow feeding the tree.
  core::Internet net;
  core::Domain& root = net.add_domain({.id = 1, .name = "root"});
  core::Domain& brancher = net.add_domain({.id = 2, .name = "brancher"});
  core::Domain& source = net.add_domain({.id = 3, .name = "source"});
  core::Domain& member = net.add_domain({.id = 4, .name = "member"});
  std::map<const core::Domain*, std::vector<int>> hops;
  net.set_delivery_observer([&](const core::Delivery& d) {
    hops[d.domain].push_back(d.hops);
  });
  net.link(root, brancher);
  net.link(brancher, source);
  net.link(root, member);
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  source.announce_unicast();
  net.settle();
  const core::Group group = Ipv4Addr::parse("224.0.128.1");
  brancher.host_join(group);
  member.host_join(group);
  net.settle();
  const Ipv4Addr s = source.host_address(1);
  brancher.build_source_branch(s, group);
  net.settle();
  hops.clear();
  source.send(group);
  net.settle();
  // The brancher gets one copy at branch distance (1 hop), and the member
  // across the root still gets its tree copy (3 hops via the brancher).
  ASSERT_EQ(hops[&brancher].size(), 1u);
  EXPECT_EQ(hops[&brancher][0], 1);
  ASSERT_EQ(hops[&member].size(), 1u);
  EXPECT_EQ(hops[&member][0], 3);
}

TEST(BranchCopies, TeardownOfSharedTreeLeavesBranchWorking) {
  core::Internet net;
  core::Domain& root = net.add_domain({.id = 1, .name = "root"});
  core::Domain& brancher = net.add_domain({.id = 2, .name = "brancher"});
  core::Domain& source = net.add_domain({.id = 3, .name = "source"});
  std::map<const core::Domain*, std::vector<int>> hops;
  net.set_delivery_observer([&](const core::Delivery& d) {
    hops[d.domain].push_back(d.hops);
  });
  net.link(root, brancher);
  net.link(root, source);
  net.link(source, brancher);
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  source.announce_unicast();
  net.settle();
  const core::Group group = Ipv4Addr::parse("224.0.128.1");
  brancher.host_join(group);
  net.settle();
  const Ipv4Addr s = source.host_address(1);
  brancher.build_source_branch(s, group);
  net.settle();
  hops.clear();
  source.send(group);
  net.settle();
  ASSERT_EQ(hops[&brancher].size(), 1u);
  EXPECT_EQ(hops[&brancher][0], 1);  // via the branch
}

}  // namespace
