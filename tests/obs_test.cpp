// Tests for the observability layer: the metrics registry / snapshots and
// the structured trace sinks (ring buffer, JSONL, level gating, sim-time
// stamping from an attached EventQueue clock).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "net/event.hpp"
#include "net/log.hpp"
#include "net/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(Metrics, SameNameReturnsSameInstrument) {
  Metrics m;
  Counter& a = m.counter("net.messages_sent");
  Counter& b = m.counter("net.messages_sent");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);

  Gauge& g1 = m.gauge("net.channels");
  Gauge& g2 = m.gauge("net.channels");
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(m.instrument_count(), 2u);
}

TEST(Metrics, SnapshotCapturesValuesAndSimTime) {
  Metrics m;
  m.counter("bgmp.joins_sent").inc(7);
  m.gauge("bgp.grib_routes").set(42.5);
  const Snapshot snap = m.snapshot(12.25);
  EXPECT_DOUBLE_EQ(snap.sim_time_seconds, 12.25);
  EXPECT_EQ(snap.counter_value("bgmp.joins_sent"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("bgp.grib_routes"), 42.5);
  EXPECT_EQ(snap.counter_count(), 1u);
  // Unknown names read as zero rather than throwing.
  EXPECT_EQ(snap.counter_value("no.such_counter"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("no.such_gauge"), 0.0);
}

TEST(Metrics, RefreshHookRunsAtSnapshotTime) {
  Metrics m;
  int sampled = 0;
  m.add_refresh_hook([&m, &sampled]() {
    ++sampled;
    m.gauge("test.live_value").set(static_cast<double>(sampled));
  });
  EXPECT_EQ(sampled, 0);
  EXPECT_DOUBLE_EQ(m.snapshot().gauge_value("test.live_value"), 1.0);
  EXPECT_DOUBLE_EQ(m.snapshot().gauge_value("test.live_value"), 2.0);
  EXPECT_EQ(sampled, 2);
}

TEST(Metrics, WriteJsonEmitsSchema) {
  Metrics m;
  m.counter("masc.claims_sent").inc(3);
  m.gauge("masc.pool_utilization").set(0.5);
  std::ostringstream out;
  m.snapshot(1.5).write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sim_time_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"masc.claims_sent\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"masc.pool_utilization\": 0.5"), std::string::npos);
}

TEST(Metrics, WriteCsvListsEveryInstrument) {
  Metrics m;
  m.counter("a.b_c").inc();
  m.gauge("d.e").set(2.0);
  std::ostringstream out;
  m.snapshot().write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("a.b_c"), std::string::npos);
  EXPECT_NE(csv.find("d.e"), std::string::npos);
}

// ----------------------------------------------------------------- Tracer

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { tracer().reset(); }
  void TearDown() override { tracer().reset(); }
};

TEST_F(TracerTest, RingBufferRecordsCarrySimTimeAndOrder) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);
  tracer().level() = TraceLevel::kInfo;

  net::EventQueue queue;
  tracer().set_clock(&queue);
  queue.schedule_at(net::SimTime::seconds(1), [] {
    log_info("test", [](std::ostream& os) { os << "first"; });
  });
  queue.schedule_at(net::SimTime::seconds(3), [] {
    log_info("test", [](std::ostream& os) { os << "second"; });
  });
  queue.run();

  ASSERT_EQ(ring->records().size(), 2u);
  EXPECT_EQ(ring->records()[0].message, "first");
  EXPECT_EQ(ring->records()[0].sim_time, net::SimTime::seconds(1));
  EXPECT_EQ(ring->records()[0].tag, "test");
  EXPECT_EQ(ring->records()[1].message, "second");
  EXPECT_EQ(ring->records()[1].sim_time, net::SimTime::seconds(3));
}

TEST_F(TracerTest, RingBufferEvictsOldestAtCapacity) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>(2);
  tracer().add_sink(ring);
  tracer().level() = TraceLevel::kInfo;
  for (int i = 0; i < 5; ++i) {
    log_info("tag", [i](std::ostream& os) { os << "msg" << i; });
  }
  EXPECT_EQ(ring->capacity(), 2u);
  ASSERT_EQ(ring->records().size(), 2u);
  EXPECT_EQ(ring->evicted(), 3u);
  EXPECT_EQ(ring->records()[0].message, "msg3");
  EXPECT_EQ(ring->records()[1].message, "msg4");
  ring->clear();
  EXPECT_TRUE(ring->records().empty());
}

TEST_F(TracerTest, LevelGatesDebugBelowInfo) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);

  tracer().level() = TraceLevel::kOff;
  log_info("t", [](std::ostream& os) { os << "silenced"; });
  EXPECT_TRUE(ring->records().empty());

  tracer().level() = TraceLevel::kInfo;
  log_debug("t", [](std::ostream& os) { os << "too detailed"; });
  log_info("t", [](std::ostream& os) { os << "heard"; });
  ASSERT_EQ(ring->records().size(), 1u);
  EXPECT_EQ(ring->records()[0].message, "heard");
  EXPECT_EQ(ring->records()[0].level, TraceLevel::kInfo);

  tracer().level() = TraceLevel::kDebug;
  log_debug("t", [](std::ostream& os) { os << "now audible"; });
  EXPECT_EQ(ring->records().size(), 2u);
}

TEST_F(TracerTest, NoSinksMeansDisabled) {
  tracer().clear_sinks();
  tracer().level() = TraceLevel::kDebug;
  EXPECT_FALSE(tracer().enabled(TraceLevel::kInfo));
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);
  EXPECT_TRUE(tracer().enabled(TraceLevel::kInfo));
  EXPECT_EQ(tracer().sink_count(), 1u);
  tracer().remove_sink(ring.get());
  EXPECT_EQ(tracer().sink_count(), 0u);
}

TEST_F(TracerTest, JsonlSinkWritesOneObjectPerLine) {
  tracer().clear_sinks();
  std::ostringstream out;
  tracer().add_sink(std::make_shared<JsonlSink>(out));
  tracer().level() = TraceLevel::kInfo;

  net::EventQueue queue;
  tracer().set_clock(&queue);
  queue.schedule_at(net::SimTime::milliseconds(1500), [] {
    log_info("bgmp.join", [](std::ostream& os) { os << "he said \"hi\""; });
  });
  queue.run();

  const std::string line = out.str();
  EXPECT_NE(line.find("\"sim_time_seconds\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"tag\":\"bgmp.join\""), std::string::npos);
  EXPECT_NE(line.find("\\\"hi\\\""), std::string::npos);  // quotes escaped
  EXPECT_EQ(line.back(), '\n');
}

TEST_F(TracerTest, ClearClockOnlyDetachesMatchingQueue) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);
  tracer().level() = TraceLevel::kInfo;

  net::EventQueue current;
  net::EventQueue stale;
  tracer().set_clock(&current);
  tracer().clear_clock(&stale);  // no-op: not the installed clock
  current.schedule_at(net::SimTime::seconds(2), [] {
    log_info("t", [](std::ostream& os) { os << "timed"; });
  });
  current.run();
  ASSERT_EQ(ring->records().size(), 1u);
  EXPECT_EQ(ring->records()[0].sim_time, net::SimTime::seconds(2));

  tracer().clear_clock(&current);
  log_info("t", [](std::ostream& os) { os << "untimed"; });
  ASSERT_EQ(ring->records().size(), 2u);
  EXPECT_EQ(ring->records()[1].sim_time, net::SimTime());
}

// The legacy net::log_* free functions are deprecated shims over the
// tracer; existing callers must keep compiling and land in the same sinks.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(TracerTest, DeprecatedNetShimsRouteThroughTracer) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);

  net::log_level() = net::LogLevel::kInfo;  // aliases obs::tracer().level()
  EXPECT_EQ(tracer().level(), TraceLevel::kInfo);

  net::log_info("legacy", [](std::ostream& os) { os << "still works"; });
  net::log_debug("legacy", [](std::ostream& os) { os << "gated"; });
  ASSERT_EQ(ring->records().size(), 1u);
  EXPECT_EQ(ring->records()[0].tag, "legacy");
  EXPECT_EQ(ring->records()[0].message, "still works");
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace obs
