// Tests for the observability layer: the metrics registry / snapshots,
// latency histograms, causal span sinks, and the structured trace sinks
// (ring buffer, JSONL, level gating, sim-time stamping from an attached
// EventQueue clock).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/event.hpp"
#include "net/time.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/sharded.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace obs {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(Metrics, SameNameReturnsSameInstrument) {
  Metrics m;
  Counter& a = m.counter("net.messages_sent");
  Counter& b = m.counter("net.messages_sent");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);

  Gauge& g1 = m.gauge("net.channels");
  Gauge& g2 = m.gauge("net.channels");
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(m.instrument_count(), 2u);
}

TEST(Metrics, SnapshotCapturesValuesAndSimTime) {
  Metrics m;
  m.counter("bgmp.joins_sent").inc(7);
  m.gauge("bgp.grib_routes").set(42.5);
  const Snapshot snap = m.snapshot(12.25);
  EXPECT_DOUBLE_EQ(snap.sim_time_seconds, 12.25);
  EXPECT_EQ(snap.counter_value("bgmp.joins_sent"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("bgp.grib_routes"), 42.5);
  EXPECT_EQ(snap.counter_count(), 1u);
  // Unknown names read as zero rather than throwing.
  EXPECT_EQ(snap.counter_value("no.such_counter"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("no.such_gauge"), 0.0);
}

TEST(Metrics, RefreshHookRunsAtSnapshotTime) {
  Metrics m;
  int sampled = 0;
  m.add_refresh_hook([&m, &sampled]() {
    ++sampled;
    m.gauge("test.live_value").set(static_cast<double>(sampled));
  });
  EXPECT_EQ(sampled, 0);
  EXPECT_DOUBLE_EQ(m.snapshot().gauge_value("test.live_value"), 1.0);
  EXPECT_DOUBLE_EQ(m.snapshot().gauge_value("test.live_value"), 2.0);
  EXPECT_EQ(sampled, 2);
}

TEST(Metrics, WriteJsonEmitsSchema) {
  Metrics m;
  m.counter("masc.claims_sent").inc(3);
  m.gauge("masc.pool_utilization").set(0.5);
  std::ostringstream out;
  m.snapshot(1.5).write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sim_time_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"masc.claims_sent\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"masc.pool_utilization\": 0.5"), std::string::npos);
}

TEST(Metrics, WriteCsvListsEveryInstrument) {
  Metrics m;
  m.counter("a.b_c").inc();
  m.gauge("d.e").set(2.0);
  std::ostringstream out;
  m.snapshot().write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("a.b_c"), std::string::npos);
  EXPECT_NE(csv.find("d.e"), std::string::npos);
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, EmptyHistogramReportsZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  const HistogramStats stats = h.stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(Histogram, SingleSampleQuantilesAreExact) {
  // Quantiles clamp to [min, max], so one sample answers exactly itself at
  // every quantile despite the log-bucket approximation.
  Histogram h;
  h.observe(0.037);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.037);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.037);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.037);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.037);
}

TEST(Histogram, BucketIndexFollowsLog2Scheme) {
  // Bucket 0 holds [0, 1ns); bucket i >= 1 holds [1ns * 2^(i-1), 1ns * 2^i).
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(0.5e-9), 0);
  EXPECT_EQ(Histogram::bucket_index(1e-9), 1);
  EXPECT_EQ(Histogram::bucket_index(1.9e-9), 1);
  EXPECT_EQ(Histogram::bucket_index(2e-9), 2);
  // A value exactly on a boundary lands in the bucket it opens.
  for (int i = 1; i < 40; ++i) {
    const double bound = 1e-9 * std::ldexp(1.0, i - 1);
    EXPECT_EQ(Histogram::bucket_index(bound), i) << "boundary 2^" << (i - 1);
  }
  // Out-of-range values saturate rather than index out of bounds.
  EXPECT_EQ(Histogram::bucket_index(1e30), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(-4.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
}

TEST(Histogram, QuantilesClampToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(0.010);
  // Every sample shares one bucket; interpolation inside the bucket must
  // not invent values outside [min, max].
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 0.010);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 0.010);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.010);
  EXPECT_DOUBLE_EQ(h.min(), 0.010);
  EXPECT_DOUBLE_EQ(h.max(), 0.010);
}

TEST(Histogram, QuantilesOrderAcrossDecades) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(0.001);   // 90% fast
  for (int i = 0; i < 10; ++i) h.observe(1.0);     // 10% slow tail
  const HistogramStats stats = h.stats();
  EXPECT_EQ(stats.count, 100u);
  EXPECT_NEAR(stats.sum, 10.09, 1e-9);
  // p50 sits in the fast bucket, p95/p99 in the tail bucket; the log
  // buckets bound the error to a factor of two.
  EXPECT_LT(stats.p50, 0.002);
  EXPECT_GT(stats.p95, 0.5);
  EXPECT_LE(stats.p95, 1.0);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
  EXPECT_DOUBLE_EQ(stats.min, 0.001);
  EXPECT_DOUBLE_EQ(stats.max, 1.0);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.observe(1.0);
  h.observe(2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MergeAddsBucketsElementWise) {
  Histogram a;
  Histogram b;
  a.observe(1e-6);
  a.observe(1e-3);
  b.observe(1e-6);
  b.observe(1.0);
  b.observe(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 2e-6 + 1e-3 + 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1e-6);
  EXPECT_DOUBLE_EQ(a.max(), 1.0);
  // The fixed bucket scheme means no realignment: each source bucket's
  // population lands in the same index in the destination.
  EXPECT_EQ(a.bucket(Histogram::bucket_index(1e-6)), 2u);
  EXPECT_EQ(a.bucket(Histogram::bucket_index(1e-3)), 1u);
  EXPECT_EQ(a.bucket(Histogram::bucket_index(1.0)), 2u);
}

TEST(Histogram, MergeWithEmptyIsIdentityEitherWay) {
  Histogram empty;
  Histogram h;
  h.observe(0.5);
  h.observe(2.0);

  Histogram into_h = h;
  into_h.merge(empty);
  EXPECT_EQ(into_h.count(), 2u);
  EXPECT_DOUBLE_EQ(into_h.min(), 0.5);
  EXPECT_DOUBLE_EQ(into_h.max(), 2.0);

  Histogram into_empty;
  into_empty.merge(h);
  EXPECT_EQ(into_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(into_empty.min(), 0.5);
  EXPECT_DOUBLE_EQ(into_empty.max(), 2.0);
  EXPECT_DOUBLE_EQ(into_empty.quantile(0.5), h.quantile(0.5));
}

TEST(Histogram, MergedQuantilesMatchConcatenatedSamples) {
  // The sweep aggregation claim: merging per-run histograms must yield
  // the same p50/p95/p99 as observing every underlying sample into one
  // histogram. With bucket-level merging this holds exactly, not just
  // approximately.
  Histogram shard_a;
  Histogram shard_b;
  Histogram shard_c;
  Histogram all;
  int i = 0;
  for (Histogram* shard : {&shard_a, &shard_b, &shard_c}) {
    for (int k = 0; k < 400; ++k, ++i) {
      // Deterministic spread over ~6 decades, interleaved across shards.
      const double v = 1e-6 * std::pow(10.0, (i % 61) / 10.0);
      shard->observe(v);
      all.observe(v);
    }
  }
  Histogram merged = shard_a;
  merged.merge(shard_b);
  merged.merge(shard_c);
  EXPECT_EQ(merged.count(), all.count());
  // Sums associate differently (per-shard subtotals vs one running sum),
  // so equality is only up to floating-point rounding.
  EXPECT_NEAR(merged.sum(), all.sum(), 1e-12 * all.sum());
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
  EXPECT_DOUBLE_EQ(merged.quantile(0.50), all.quantile(0.50));
  EXPECT_DOUBLE_EQ(merged.quantile(0.95), all.quantile(0.95));
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), all.quantile(0.99));
  for (int b = 0; b < Histogram::kBucketCount; ++b) {
    ASSERT_EQ(merged.bucket(b), all.bucket(b)) << "bucket " << b;
  }
}

TEST(Metrics, SnapshotMergeFromCombinesRegistries) {
  Metrics run1;
  run1.counter("net.messages_sent").inc(10);
  run1.counter("only.in_run1").inc(1);
  run1.gauge("bgp.grib_routes").set(5.0);
  run1.histogram("net.delivery_latency").observe(0.01);
  run1.histogram("net.delivery_latency").observe(0.02);

  Metrics run2;
  run2.counter("net.messages_sent").inc(32);
  run2.counter("only.in_run2").inc(2);
  run2.gauge("bgp.grib_routes").set(7.0);
  run2.histogram("net.delivery_latency").observe(0.04);

  Snapshot merged = run1.snapshot(100.0);
  merged.merge_from(run2.snapshot(250.0));

  EXPECT_EQ(merged.counter_value("net.messages_sent"), 42u);
  EXPECT_EQ(merged.counter_value("only.in_run1"), 1u);
  EXPECT_EQ(merged.counter_value("only.in_run2"), 2u);
  EXPECT_DOUBLE_EQ(merged.gauge_value("bgp.grib_routes"), 12.0);
  EXPECT_DOUBLE_EQ(merged.sim_time_seconds, 250.0);  // max, not sum

  const HistogramStats stats =
      merged.histogram_stats("net.delivery_latency");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.sum, 0.07);
  EXPECT_DOUBLE_EQ(stats.min, 0.01);
  EXPECT_DOUBLE_EQ(stats.max, 0.04);
  // Quantiles recomputed from merged buckets, not averaged stats.
  Histogram reference;
  reference.observe(0.01);
  reference.observe(0.02);
  reference.observe(0.04);
  EXPECT_DOUBLE_EQ(stats.p50, reference.quantile(0.50));
  EXPECT_DOUBLE_EQ(stats.p99, reference.quantile(0.99));
}

TEST(Metrics, HistogramRegistersLikeOtherInstruments) {
  Metrics m;
  Histogram& a = m.histogram("net.delivery_latency");
  Histogram& b = m.histogram("net.delivery_latency");
  EXPECT_EQ(&a, &b);
  a.observe(0.25);
  m.counter("x.y").inc();
  EXPECT_EQ(m.instrument_count(), 2u);

  const Snapshot snap = m.snapshot(3.0);
  const HistogramStats stats = snap.histogram_stats("net.delivery_latency");
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.p50, 0.25);
  // Absent histograms read as zero stats, mirroring counter_value().
  EXPECT_EQ(snap.histogram_stats("no.such").count, 0u);
}

TEST(Metrics, WriteJsonAndJsonlIncludeHistograms) {
  Metrics m;
  m.histogram("bgmp.join_propagation_latency").observe(0.04);
  std::ostringstream pretty;
  m.snapshot(1.0).write_json(pretty);
  const std::string json = pretty.str();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bgmp.join_propagation_latency\""),
            std::string::npos);
  for (const char* field : {"count", "sum", "min", "max", "p50", "p95",
                            "p99"}) {
    EXPECT_NE(json.find("\"" + std::string(field) + "\""), std::string::npos)
        << field;
  }

  std::ostringstream compact;
  m.snapshot(1.0).write_jsonl(compact);
  const std::string line = compact.str();
  // One JSON object per line: exactly one newline, at the end.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  EXPECT_NE(line.find("\"histograms\":{"), std::string::npos);
}

TEST(Metrics, WriteCsvExpandsHistogramRows) {
  Metrics m;
  m.histogram("masc.claim_grant_latency").observe(2.0);
  std::ostringstream out;
  m.snapshot().write_csv(out);
  const std::string csv = out.str();
  for (const char* suffix : {".count", ".sum", ".min", ".max", ".p50",
                             ".p95", ".p99"}) {
    EXPECT_NE(csv.find("masc.claim_grant_latency" + std::string(suffix)),
              std::string::npos)
        << suffix;
  }
  EXPECT_NE(csv.find("histogram"), std::string::npos);
}

// ------------------------------------------------------------------ Spans

SpanEvent make_span(std::uint64_t trace_id, SpanEvent::Kind kind) {
  SpanEvent ev;
  ev.trace_id = trace_id;
  ev.sim_time = net::SimTime::milliseconds(1500);
  ev.kind = kind;
  ev.from = "D1/bgmp";
  ev.to = "D2/bgmp";
  ev.message = "JOIN (*,G)";
  return ev;
}

TEST(Spans, MemorySinkFiltersByTraceId) {
  MemorySpanSink sink;
  sink.record(make_span(1, SpanEvent::Kind::kSend));
  sink.record(make_span(2, SpanEvent::Kind::kSend));
  sink.record(make_span(1, SpanEvent::Kind::kDeliver));
  EXPECT_EQ(sink.events().size(), 3u);
  const auto one = sink.events_for(1);
  ASSERT_EQ(one.size(), 2u);
  EXPECT_EQ(one[0].kind, SpanEvent::Kind::kSend);
  EXPECT_EQ(one[1].kind, SpanEvent::Kind::kDeliver);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(Spans, JsonlSinkEmitsDocumentedSchema) {
  std::ostringstream out;
  JsonlSpanSink sink(out);
  sink.record(make_span(7, SpanEvent::Kind::kSend));
  const std::string line = out.str();
  EXPECT_NE(line.find("\"trace_id\":7"), std::string::npos);
  EXPECT_NE(line.find("\"sim_time_seconds\":1.500000000"),
            std::string::npos);
  EXPECT_NE(line.find("\"event\":\"send\""), std::string::npos);
  EXPECT_NE(line.find("\"from\":\"D1/bgmp\""), std::string::npos);
  EXPECT_NE(line.find("\"to\":\"D2/bgmp\""), std::string::npos);
  EXPECT_NE(line.find("\"message\":\"JOIN (*,G)\""), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(Spans, FlightRecorderEvictsOldestAtCapacity) {
  FlightRecorderSink recorder(2);
  recorder.record(make_span(1, SpanEvent::Kind::kSend));
  recorder.record(make_span(2, SpanEvent::Kind::kSend));
  recorder.record(make_span(3, SpanEvent::Kind::kSend));
  EXPECT_EQ(recorder.evicted(), 1u);
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events().front().trace_id, 2u);
  EXPECT_EQ(recorder.events().back().trace_id, 3u);
  std::ostringstream out;
  recorder.dump(out);
  EXPECT_EQ(out.str().find("\"trace_id\":1"), std::string::npos);
  EXPECT_NE(out.str().find("\"trace_id\":3"), std::string::npos);
}

// ----------------------------------------------------------------- Tracer

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { tracer().reset(); }
  void TearDown() override { tracer().reset(); }
};

TEST_F(TracerTest, RingBufferRecordsCarrySimTimeAndOrder) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);
  tracer().level() = TraceLevel::kInfo;

  net::EventQueue queue;
  tracer().set_clock(&queue);
  queue.schedule_at(net::SimTime::seconds(1), [] {
    log_info("test", [](std::ostream& os) { os << "first"; });
  });
  queue.schedule_at(net::SimTime::seconds(3), [] {
    log_info("test", [](std::ostream& os) { os << "second"; });
  });
  queue.run();

  ASSERT_EQ(ring->records().size(), 2u);
  EXPECT_EQ(ring->records()[0].message, "first");
  EXPECT_EQ(ring->records()[0].sim_time, net::SimTime::seconds(1));
  EXPECT_EQ(ring->records()[0].tag, "test");
  EXPECT_EQ(ring->records()[1].message, "second");
  EXPECT_EQ(ring->records()[1].sim_time, net::SimTime::seconds(3));
}

TEST_F(TracerTest, RingBufferEvictsOldestAtCapacity) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>(2);
  tracer().add_sink(ring);
  tracer().level() = TraceLevel::kInfo;
  for (int i = 0; i < 5; ++i) {
    log_info("tag", [i](std::ostream& os) { os << "msg" << i; });
  }
  EXPECT_EQ(ring->capacity(), 2u);
  ASSERT_EQ(ring->records().size(), 2u);
  EXPECT_EQ(ring->evicted(), 3u);
  EXPECT_EQ(ring->records()[0].message, "msg3");
  EXPECT_EQ(ring->records()[1].message, "msg4");
  ring->clear();
  EXPECT_TRUE(ring->records().empty());
}

TEST_F(TracerTest, LevelGatesDebugBelowInfo) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);

  tracer().level() = TraceLevel::kOff;
  log_info("t", [](std::ostream& os) { os << "silenced"; });
  EXPECT_TRUE(ring->records().empty());

  tracer().level() = TraceLevel::kInfo;
  log_debug("t", [](std::ostream& os) { os << "too detailed"; });
  log_info("t", [](std::ostream& os) { os << "heard"; });
  ASSERT_EQ(ring->records().size(), 1u);
  EXPECT_EQ(ring->records()[0].message, "heard");
  EXPECT_EQ(ring->records()[0].level, TraceLevel::kInfo);

  tracer().level() = TraceLevel::kDebug;
  log_debug("t", [](std::ostream& os) { os << "now audible"; });
  EXPECT_EQ(ring->records().size(), 2u);
}

TEST_F(TracerTest, NoSinksMeansDisabled) {
  tracer().clear_sinks();
  tracer().level() = TraceLevel::kDebug;
  EXPECT_FALSE(tracer().enabled(TraceLevel::kInfo));
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);
  EXPECT_TRUE(tracer().enabled(TraceLevel::kInfo));
  EXPECT_EQ(tracer().sink_count(), 1u);
  tracer().remove_sink(ring.get());
  EXPECT_EQ(tracer().sink_count(), 0u);
}

TEST_F(TracerTest, JsonlSinkWritesOneObjectPerLine) {
  tracer().clear_sinks();
  std::ostringstream out;
  tracer().add_sink(std::make_shared<JsonlSink>(out));
  tracer().level() = TraceLevel::kInfo;

  net::EventQueue queue;
  tracer().set_clock(&queue);
  queue.schedule_at(net::SimTime::milliseconds(1500), [] {
    log_info("bgmp.join", [](std::ostream& os) { os << "he said \"hi\""; });
  });
  queue.run();

  const std::string line = out.str();
  EXPECT_NE(line.find("\"sim_time_seconds\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"tag\":\"bgmp.join\""), std::string::npos);
  EXPECT_NE(line.find("\\\"hi\\\""), std::string::npos);  // quotes escaped
  EXPECT_EQ(line.back(), '\n');
}

TEST_F(TracerTest, ClearClockOnlyDetachesMatchingQueue) {
  tracer().clear_sinks();
  auto ring = std::make_shared<RingBufferSink>();
  tracer().add_sink(ring);
  tracer().level() = TraceLevel::kInfo;

  net::EventQueue current;
  net::EventQueue stale;
  tracer().set_clock(&current);
  tracer().clear_clock(&stale);  // no-op: not the installed clock
  current.schedule_at(net::SimTime::seconds(2), [] {
    log_info("t", [](std::ostream& os) { os << "timed"; });
  });
  current.run();
  ASSERT_EQ(ring->records().size(), 1u);
  EXPECT_EQ(ring->records()[0].sim_time, net::SimTime::seconds(2));

  tracer().clear_clock(&current);
  log_info("t", [](std::ostream& os) { os << "untimed"; });
  ASSERT_EQ(ring->records().size(), 2u);
  EXPECT_EQ(ring->records()[1].sim_time, net::SimTime());
}

// ---------------------------------------------------- registry kind checks

TEST(Metrics, DuplicateRegistrationWithDifferentKindThrows) {
  Metrics m;
  m.counter("net.messages_sent");
  EXPECT_THROW(m.gauge("net.messages_sent"), std::logic_error);
  EXPECT_THROW(m.histogram("net.messages_sent"), std::logic_error);
  EXPECT_THROW(m.sharded_counter("net.messages_sent"), std::logic_error);
  EXPECT_THROW(m.topk_gauge("net.messages_sent"), std::logic_error);
  // Same kind re-registers fine (and returns the same instrument).
  EXPECT_EQ(&m.counter("net.messages_sent"), &m.counter("net.messages_sent"));

  m.sharded_counter("bgp.updates_sent.by_domain");
  EXPECT_THROW(m.counter("bgp.updates_sent.by_domain"), std::logic_error);
  EXPECT_THROW(m.topk_gauge("bgp.updates_sent.by_domain"), std::logic_error);

  m.topk_gauge("core.state_bytes.by_domain");
  EXPECT_THROW(m.sharded_counter("core.state_bytes.by_domain"),
               std::logic_error);
}

// --------------------------------------------------- sharded instruments

TEST(Sharded, CounterIsExactUnderCapacity) {
  ShardedCounter c(/*capacity=*/8, /*export_top=*/8);
  for (std::uint64_t key = 1; key <= 4; ++key) c.add(key, key * 10);
  EXPECT_EQ(c.total(), 100u);
  EXPECT_EQ(c.tracked(), 4u);
  for (std::uint64_t key = 1; key <= 4; ++key) {
    EXPECT_EQ(c.count_of(key), key * 10);
  }
  const std::vector<ShardedItem> top = c.top(8);
  ASSERT_EQ(top.size(), 4u);
  // Value descending; every item exact (error 0) — nothing was evicted.
  EXPECT_EQ(top[0].key, 4u);
  EXPECT_EQ(top[3].key, 1u);
  for (const ShardedItem& item : top) EXPECT_EQ(item.error, 0u);
}

TEST(Sharded, CounterKeepsHeavyHittersAcrossEviction) {
  // Two heavy keys plus a stream of one-shot keys that overflow the
  // capacity: space-saving must keep the heavy keys tracked, report
  // per-key counts as upper bounds, and keep the grand total exact.
  ShardedCounter c(/*capacity=*/4, /*export_top=*/4);
  for (int i = 0; i < 500; ++i) {
    c.add(1);
    c.add(2);
    c.add(1000 + static_cast<std::uint64_t>(i));  // singleton churn
  }
  EXPECT_EQ(c.total(), 1500u);
  EXPECT_EQ(c.tracked(), 4u);  // bounded memory
  EXPECT_GE(c.count_of(1), 500u);  // upper bound on the true count
  EXPECT_GE(c.count_of(2), 500u);
  const std::vector<ShardedItem> top = c.top(2);
  ASSERT_EQ(top.size(), 2u);
  const std::set<std::uint64_t> heavy = {top[0].key, top[1].key};
  EXPECT_TRUE(heavy.count(1)) << "heavy hitter 1 evicted";
  EXPECT_TRUE(heavy.count(2)) << "heavy hitter 2 evicted";
}

TEST(Sharded, TopOrdersValueDescendingThenKeyAscending) {
  ShardedCounter c(/*capacity=*/8, /*export_top=*/8);
  c.add(5, 10);
  c.add(3, 10);
  c.add(9, 20);
  const std::vector<ShardedItem> top = c.top(8);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 9u);
  EXPECT_EQ(top[1].key, 3u);  // ties break key-ascending — deterministic
  EXPECT_EQ(top[2].key, 5u);
}

TEST(Sharded, TopKGaugeKeepsExactTopKPerEpoch) {
  TopKGauge g(/*k=*/3);
  g.begin_epoch();
  for (std::uint64_t key = 1; key <= 10; ++key) {
    g.set(key, static_cast<double>(key * 100));
  }
  EXPECT_EQ(g.seen(), 10u);
  EXPECT_DOUBLE_EQ(g.total(), 5500.0);
  ASSERT_EQ(g.top().size(), 3u);
  EXPECT_EQ(g.top()[0].key, 10u);
  EXPECT_EQ(g.top()[1].key, 9u);
  EXPECT_EQ(g.top()[2].key, 8u);
  for (const ShardedItem& item : g.top()) EXPECT_EQ(item.error, 0u);

  // A new epoch starts from scratch — stale keys do not linger.
  g.begin_epoch();
  g.set(42, 7.0);
  EXPECT_EQ(g.seen(), 1u);
  EXPECT_DOUBLE_EQ(g.total(), 7.0);
  ASSERT_EQ(g.top().size(), 1u);
  EXPECT_EQ(g.top()[0].key, 42u);
}

TEST(Sharded, SnapshotExportsBoundedTopAndExactTotal) {
  Metrics m;
  ShardedCounter& c = m.sharded_counter("bgp.updates_sent.by_domain",
                                        /*capacity=*/64, /*export_top=*/2);
  for (std::uint64_t key = 1; key <= 5; ++key) c.add(key, key);
  const Snapshot snap = m.snapshot();
  const ShardedSample* sample = snap.find_sharded("bgp.updates_sent.by_domain");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, ShardedSample::Kind::kCounter);
  EXPECT_DOUBLE_EQ(sample->total, 15.0);       // exact despite bounded items
  ASSERT_EQ(sample->items.size(), 2u);         // export_top caps the view
  EXPECT_EQ(sample->items[0].key, 5u);
  EXPECT_EQ(sample->items[1].key, 4u);
  EXPECT_DOUBLE_EQ(snap.sharded_total("bgp.updates_sent.by_domain"), 15.0);
  EXPECT_EQ(snap.find_sharded("no.such"), nullptr);

  std::ostringstream os;
  snap.write_json(os);
  EXPECT_NE(os.str().find("\"sharded\""), std::string::npos);
  EXPECT_NE(os.str().find("\"bgp.updates_sent.by_domain\""),
            std::string::npos);
}

// ------------------------------------------------ snapshot binary search

TEST(Snapshots, FindLocatesEveryInstrumentInLargeSnapshots) {
  // 300 instruments: the binary-search path must find every name exactly
  // and miss cleanly — this is the lookup bench/micro_core benchmarks.
  Metrics m;
  std::vector<std::string> names;
  for (int i = 0; i < 300; ++i) {
    std::string name = "bench.metric." + std::to_string(i);
    if (i % 2 == 0) {
      m.counter(name).inc(static_cast<std::uint64_t>(i) + 1);
    } else {
      m.gauge(name).set(static_cast<double>(i) + 0.5);
    }
    names.push_back(std::move(name));
  }
  m.histogram("bench.latency").observe(1.0);
  const Snapshot snap = m.snapshot();
  ASSERT_EQ(snap.samples.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    const Sample* s = snap.find(names[static_cast<std::size_t>(i)]);
    ASSERT_NE(s, nullptr) << names[static_cast<std::size_t>(i)];
    if (i % 2 == 0) {
      EXPECT_EQ(s->kind, Sample::Kind::kCounter);
      EXPECT_EQ(s->count, static_cast<std::uint64_t>(i) + 1);
    } else {
      EXPECT_EQ(s->kind, Sample::Kind::kGauge);
      EXPECT_DOUBLE_EQ(s->value, static_cast<double>(i) + 0.5);
    }
  }
  // Misses: before the first name, between names, after the last.
  EXPECT_EQ(snap.find("aaaa"), nullptr);
  EXPECT_EQ(snap.find("bench.metric.1500"), nullptr);
  EXPECT_EQ(snap.find("zzzz"), nullptr);
  ASSERT_NE(snap.find_histogram("bench.latency"), nullptr);
  EXPECT_EQ(snap.find_histogram("bench.metric.0"), nullptr);
}

// ---------------------------------------------------------- flight recorder

TEST(Recorder, DeltaFramesCarryOnlyChangedSeries) {
  Metrics m;
  Counter& moving = m.counter("test.moving");
  m.counter("test.frozen").inc(5);
  Recorder rec;
  rec.tick(m.snapshot(0.0));  // first frame captures everything
  moving.inc();
  rec.tick(m.snapshot(1.0));
  moving.inc();
  rec.tick(m.snapshot(2.0));
  EXPECT_EQ(rec.ticks(), 3u);
  EXPECT_EQ(rec.frames(), 3u);
  EXPECT_EQ(rec.series(), 2u);

  std::ostringstream os;
  rec.flush_jsonl(os);
  const std::string text = os.str();
  // "test.frozen" appears once (the first full frame), not per-frame.
  std::size_t frozen_mentions = 0;
  for (std::size_t at = text.find("test.frozen"); at != std::string::npos;
       at = text.find("test.frozen", at + 1)) {
    ++frozen_mentions;
  }
  EXPECT_EQ(frozen_mentions, 1u);
  EXPECT_NE(text.find("\"recorder\""), std::string::npos);
}

TEST(Recorder, EvictionFoldsOldFramesIntoBase) {
  Metrics m;
  Counter& c = m.counter("test.count");
  Recorder rec(Recorder::Config{.capacity = 2});
  for (int t = 0; t < 5; ++t) {
    c.inc(10);
    rec.tick(m.snapshot(static_cast<double>(t)));
  }
  EXPECT_EQ(rec.ticks(), 5u);
  EXPECT_EQ(rec.frames(), 2u);   // ring is bounded
  EXPECT_EQ(rec.evicted(), 3u);  // the rest folded into the base

  std::ostringstream os;
  rec.flush_jsonl(os);
  const std::string text = os.str();
  // Base line reconstructs the absolute value at eviction time (t=2,
  // count=30), and the retained frames still replay to the final 50.
  EXPECT_NE(text.find("\"base\":true"), std::string::npos);
  EXPECT_NE(text.find("\"test.count\":30"), std::string::npos);
  EXPECT_NE(text.find("\"test.count\":50"), std::string::npos);
}

TEST(Recorder, HistogramsExpandToCountAndSum) {
  Metrics m;
  m.histogram("net.delivery_latency").observe(2.0);
  m.histogram("net.delivery_latency").observe(3.0);
  Recorder rec;
  rec.tick(m.snapshot(0.0));
  std::ostringstream os;
  rec.flush_jsonl(os);
  EXPECT_NE(os.str().find("\"net.delivery_latency.count\":2"),
            std::string::npos);
  EXPECT_NE(os.str().find("\"net.delivery_latency.sum\":5"),
            std::string::npos);
}

// ------------------------------------------------------ span head sampling

SpanEvent sampled_span(std::uint64_t trace_id, SpanEvent::Kind kind) {
  SpanEvent event;
  event.trace_id = trace_id;
  event.kind = kind;
  event.from = "a";
  event.to = "b";
  event.message = "m";
  return event;
}

TEST(Sampling, RateOneKeepsEverythingRateZeroKeepsOnlyMarkers) {
  MemorySpanSink memory;
  SamplingSpanSink all(memory, 1.0);
  for (std::uint64_t id = 1; id <= 50; ++id) {
    EXPECT_TRUE(all.wants(id));
    all.record(sampled_span(id, SpanEvent::Kind::kSend));
  }
  EXPECT_EQ(all.recorded(), 50u);
  EXPECT_EQ(memory.events().size(), 50u);

  memory.clear();
  SamplingSpanSink none(memory, 0.0);
  for (std::uint64_t id = 1; id <= 50; ++id) EXPECT_FALSE(none.wants(id));
  // Probe markers (trace_id 0) bypass sampling at any rate: the analyzer
  // needs the measurement windows even in a 0%-sampled stream.
  EXPECT_TRUE(none.wants(0));
  none.record(sampled_span(0, SpanEvent::Kind::kProbeArm));
  EXPECT_EQ(none.recorded(), 1u);
}

TEST(Sampling, KeptSetIsAPureFunctionOfTheTraceId) {
  MemorySpanSink sink_a;
  MemorySpanSink sink_b;
  SamplingSpanSink first(sink_a, 0.25);
  SamplingSpanSink second(sink_b, 0.25);
  std::size_t kept = 0;
  for (std::uint64_t id = 1; id <= 2000; ++id) {
    const bool want = first.wants(id);
    // Two independent sinks at the same rate agree on every id, and
    // asking twice never changes the answer — no order/time dependence.
    EXPECT_EQ(second.wants(id), want);
    EXPECT_EQ(first.wants(id), want);
    if (want) ++kept;
  }
  // A hash-based 25% sample of 2000 ids lands near 500.
  EXPECT_GT(kept, 350u);
  EXPECT_LT(kept, 650u);
}

TEST(Sampling, KeepsWholeCausalChainsIntact) {
  // Every hop of a chain carries the same trace id, so a kept chain is
  // kept in full: record() must never split a chain across the decision.
  MemorySpanSink memory;
  SamplingSpanSink sampler(memory, 0.5);
  constexpr std::uint64_t kIds = 200;
  for (std::uint64_t id = 1; id <= kIds; ++id) {
    for (const SpanEvent::Kind kind :
         {SpanEvent::Kind::kSend, SpanEvent::Kind::kDeliver,
          SpanEvent::Kind::kSend, SpanEvent::Kind::kDeliver}) {
      if (sampler.wants(id)) sampler.record(sampled_span(id, kind));
    }
  }
  std::set<std::uint64_t> seen;
  for (const SpanEvent& event : memory.events()) seen.insert(event.trace_id);
  for (const std::uint64_t id : seen) {
    EXPECT_EQ(memory.events_for(id).size(), 4u) << "chain " << id << " torn";
  }
  EXPECT_GT(seen.size(), 0u);
  EXPECT_LT(seen.size(), kIds);
}

TEST(Sampling, WantsMatchesTheExposedHash) {
  // The sink's decision is exactly `span_hash(id) < rate * 2^53 << 11` —
  // the contract tests and offline tooling can rely on to predict samples.
  const double rate = 0.01;
  MemorySpanSink memory;
  SamplingSpanSink sampler(memory, rate);
  const std::uint64_t threshold =
      static_cast<std::uint64_t>(rate * 9007199254740992.0) << 11;
  for (std::uint64_t id = 1; id <= 5000; ++id) {
    EXPECT_EQ(sampler.wants(id), span_hash(id) < threshold) << id;
  }
}

}  // namespace
}  // namespace obs
