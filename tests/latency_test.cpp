// Stack-level tests for the second observability tier: causal trace-id
// propagation across lossy and partitioned links, span reconstruction of a
// BGMP join leaf→root from the JSONL flight-recorder format, the
// convergence probe's one-sample-per-perturbation contract, the five
// <module>.<noun>_latency instruments, and gauge stability across
// back-to-back snapshots of a quiescent network.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "core/internet.hpp"
#include "masc/node.hpp"
#include "net/network.hpp"
#include "net/probe.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using core::Domain;
using core::Internet;

// ------------------------------------------------------- net-level helpers

struct TestMsg final : net::Message {
  [[nodiscard]] std::string describe() const override { return "TEST"; }
};

struct TestEndpoint final : net::Endpoint {
  explicit TestEndpoint(std::string name) : name_(std::move(name)) {}
  void on_message(net::ChannelId,
                  std::unique_ptr<net::Message> msg) override {
    received_trace_ids.push_back(msg->trace_id);
  }
  [[nodiscard]] std::string name() const override { return name_; }

  std::string name_;
  std::vector<std::uint64_t> received_trace_ids;
};

TEST(TraceIds, HeldMessageKeepsTraceIdAndCountsHoldTimeAsLatency) {
  net::EventQueue events;
  net::Network network(events);
  obs::MemorySpanSink sink;
  network.set_span_sink(&sink);
  TestEndpoint a("A");
  TestEndpoint b("B");
  const net::ChannelId ch =
      network.connect(a, b, net::SimTime::milliseconds(10));

  network.set_up(ch, false);
  const std::uint64_t id = network.send(ch, a, std::make_unique<TestMsg>());
  ASSERT_NE(id, 0u);
  {
    const auto held = sink.events_for(id);
    ASSERT_EQ(held.size(), 1u);
    EXPECT_EQ(held[0].kind, obs::SpanEvent::Kind::kHold);
  }

  // Heal the partition five seconds later: the message flushes with its
  // original trace id, and the delivery latency includes the hold time.
  events.run_until(net::SimTime::seconds(5));
  network.set_up(ch, true);
  events.run();

  ASSERT_EQ(b.received_trace_ids.size(), 1u);
  EXPECT_EQ(b.received_trace_ids[0], id);
  const auto span = sink.events_for(id);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0].kind, obs::SpanEvent::Kind::kHold);
  EXPECT_EQ(span[1].kind, obs::SpanEvent::Kind::kSend);
  EXPECT_EQ(span[2].kind, obs::SpanEvent::Kind::kDeliver);

  const obs::HistogramStats latency =
      network.metrics().snapshot().histogram_stats("net.delivery_latency");
  EXPECT_EQ(latency.count, 1u);
  EXPECT_GE(latency.min, 5.0);  // partition time counts
}

TEST(TraceIds, DropWhenDownRecordsDropSpanWithTraceId) {
  net::EventQueue events;
  net::Network network(events);
  obs::MemorySpanSink sink;
  network.set_span_sink(&sink);
  TestEndpoint a("A");
  TestEndpoint b("B");
  const net::ChannelId ch = network.connect(a, b);
  network.set_drop_when_down(ch, true);
  network.set_up(ch, false);

  const std::uint64_t id = network.send(ch, a, std::make_unique<TestMsg>());
  events.run();

  EXPECT_TRUE(b.received_trace_ids.empty());
  const auto span = sink.events_for(id);
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(span[0].kind, obs::SpanEvent::Kind::kDrop);
  EXPECT_EQ(span[0].trace_id, id);
  EXPECT_EQ(network.messages_dropped(), 1u);
}

TEST(TraceIds, DerivedMessagesInheritTheAmbientTraceId) {
  // A handler that relays inside on_message must produce a send carrying
  // the delivered message's trace id — the ambient-context rule every
  // protocol layer (BGMP joins, BGP re-advertisements) relies on.
  net::EventQueue events;
  net::Network network(events);
  obs::MemorySpanSink sink;
  network.set_span_sink(&sink);

  struct Relay final : net::Endpoint {
    net::Network* network = nullptr;
    net::ChannelId out{};
    void on_message(net::ChannelId,
                    std::unique_ptr<net::Message>) override {
      network->send(out, *this, std::make_unique<TestMsg>());
    }
    [[nodiscard]] std::string name() const override { return "relay"; }
  };

  TestEndpoint a("A");
  Relay relay;
  TestEndpoint c("C");
  const net::ChannelId in = network.connect(a, relay);
  relay.network = &network;
  relay.out = network.connect(relay, c);

  const std::uint64_t id = network.send(in, a, std::make_unique<TestMsg>());
  events.run();

  ASSERT_EQ(c.received_trace_ids.size(), 1u);
  EXPECT_EQ(c.received_trace_ids[0], id);
  // One causal chain: send a→relay, deliver, send relay→c, deliver.
  EXPECT_EQ(sink.events_for(id).size(), 4u);
}

// -------------------------------------------------- span JSONL round trip

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Spans, BgmpJoinReconstructsLeafToRootFromJsonl) {
  // A three-domain chain; the member joins at the leaf. Filtering the span
  // JSONL on the join's single trace id must reconstruct the hop-by-hop
  // path leaf → mid → root.
  Internet net;
  Domain& root = net.add_domain({.id = 1, .name = "root"});
  Domain& mid = net.add_domain({.id = 2, .name = "mid"});
  Domain& leaf = net.add_domain({.id = 3, .name = "leaf"});
  net.link(root, mid);
  net.link(mid, leaf);

  std::ostringstream spans;
  obs::JsonlSpanSink sink(spans);
  net.network().set_span_sink(&sink);

  const core::Group group = net::Ipv4Addr::parse("224.0.128.1");
  root.originate_group_range(net::Prefix::parse("224.0.128.0/24"));
  net.settle();
  spans.str("");  // keep only the join's events

  leaf.host_join(group);
  net.settle();

  const std::vector<std::string> lines = split_lines(spans.str());
  ASSERT_FALSE(lines.empty());

  // The join's trace id: the JOIN send leaving the leaf's BGMP router.
  std::uint64_t trace_id = 0;
  for (const std::string& line : lines) {
    if (line.find("\"event\":\"send\"") == std::string::npos) continue;
    if (line.find("\"from\":\"leaf/bgmp\"") == std::string::npos) continue;
    if (line.find("JOIN") == std::string::npos) continue;
    trace_id = std::stoull(line.substr(line.find(':') + 1));
    break;
  }
  ASSERT_NE(trace_id, 0u) << "no JOIN send from leaf/bgmp recorded";

  // Filter on that one id and check the leaf→root sequence.
  const std::string key = "\"trace_id\":" + std::to_string(trace_id) + ",";
  std::vector<std::string> chain;
  for (const std::string& line : lines) {
    if (line.find(key) != std::string::npos) chain.push_back(line);
  }
  const char* expected[] = {
      "\"event\":\"send\",\"from\":\"leaf/bgmp\",\"to\":\"mid/bgmp\"",
      "\"event\":\"deliver\",\"from\":\"leaf/bgmp\",\"to\":\"mid/bgmp\"",
      "\"event\":\"send\",\"from\":\"mid/bgmp\",\"to\":\"root/bgmp\"",
      "\"event\":\"deliver\",\"from\":\"mid/bgmp\",\"to\":\"root/bgmp\"",
  };
  std::size_t at = 0;
  for (const char* want : expected) {
    bool found = false;
    for (; at < chain.size(); ++at) {
      if (chain[at].find(want) != std::string::npos) {
        found = true;
        ++at;
        break;
      }
    }
    EXPECT_TRUE(found) << "missing (in order): " << want;
  }
}

// -------------------------------------------------------- convergence probe

TEST(ConvergenceProbe, RecordsExactlyOneSamplePerPerturbation) {
  Internet net;
  Domain& a = net.add_domain({.id = 1, .name = "A"});
  Domain& b = net.add_domain({.id = 2, .name = "B"});
  net.link(a, b);
  a.announce_unicast();
  b.announce_unicast();
  net.settle();
  // Initial topology construction is not a perturbation.
  EXPECT_EQ(net.convergence_probe().samples_recorded(), 0u);

  net.set_link_state(a, b, false);
  EXPECT_TRUE(net.convergence_probe().armed());
  net.settle();
  EXPECT_FALSE(net.convergence_probe().armed());
  EXPECT_EQ(net.convergence_probe().samples_recorded(), 1u);

  net.set_link_state(a, b, true);
  net.settle();
  EXPECT_EQ(net.convergence_probe().samples_recorded(), 2u);

  // A domain joining the running internet is also a perturbation; linking
  // it re-arms (restarts) the same measurement rather than adding one.
  Domain& c = net.add_domain({.id = 3, .name = "C"});
  EXPECT_TRUE(net.convergence_probe().armed());
  net.link(b, c);
  c.announce_unicast();
  net.settle();
  EXPECT_EQ(net.convergence_probe().samples_recorded(), 3u);

  const obs::HistogramStats converge =
      net.metrics_snapshot().histogram_stats("core.convergence_latency");
  EXPECT_EQ(converge.count, 3u);
}

TEST(ConvergenceProbe, ReArmingRestartsTheMeasurement) {
  net::EventQueue events;
  net::Network network(events);
  obs::Histogram latency;
  net::ConvergenceProbe probe(network, latency, net::SimTime::seconds(2));
  probe.arm("first");
  probe.arm("second");  // restart — still one pending measurement
  events.run();
  EXPECT_EQ(probe.samples_recorded(), 1u);
  EXPECT_EQ(latency.count(), 1u);
}

TEST(ConvergenceProbe, CrashRestartRecordsOneSamplePerPerturbation) {
  // A domain crash-restart is a perturbation like any other: the probe
  // re-arms at the crash instant and, once the sessions re-establish and
  // the trees repair, records exactly one time-to-converge sample — not
  // zero (probe never re-armed after a restart) and not one per bounced
  // channel.
  Internet net;
  Domain& a = net.add_domain({.id = 1, .name = "A"});
  Domain& b = net.add_domain({.id = 2, .name = "B"});
  Domain& c = net.add_domain({.id = 3, .name = "C"});
  net.link(a, b);
  net.link(b, c);
  for (Domain* d : {&a, &b, &c}) d->announce_unicast();
  a.originate_group_range(net::Prefix::parse("224.0.128.0/24"));
  net.settle();
  c.host_join(net::Ipv4Addr::parse("224.0.128.1"));
  net.settle();
  const std::uint64_t baseline = net.convergence_probe().samples_recorded();

  // Crash the transit domain — both its channels bounce, BGMP soft state
  // vanishes, membership is re-expressed on restart.
  net.crash_restart_domain(b);
  EXPECT_TRUE(net.convergence_probe().armed());
  net.settle();
  EXPECT_FALSE(net.convergence_probe().armed());
  EXPECT_EQ(net.convergence_probe().samples_recorded(), baseline + 1);

  // The probe survives repeated crash cycles: one sample each.
  net.crash_restart_domain(c);
  net.settle();
  net.crash_restart_domain(b);
  net.settle();
  EXPECT_EQ(net.convergence_probe().samples_recorded(), baseline + 3);

  const obs::HistogramStats converge =
      net.metrics_snapshot().histogram_stats("core.convergence_latency");
  EXPECT_EQ(converge.count, baseline + 3);
  EXPECT_GT(converge.min, 0.0);
}

// ------------------------------------------------------ latency instruments

TEST(Instruments, LatencyHistogramsPopulateAcrossTheStack) {
  // One run exercising MASC claiming, BGP convergence, a BGMP join and
  // data delivery; the snapshot must carry samples in the corresponding
  // <module>.<noun>_latency histograms.
  Internet net;
  Domain& t = net.add_domain({.id = 1, .name = "T"});
  Domain& c = net.add_domain({.id = 2, .name = "C"});
  Domain& m = net.add_domain({.id = 3, .name = "M"});
  net.link(t, c, bgp::Relationship::kCustomer);
  net.link(t, m, bgp::Relationship::kLateral);
  net.masc_parent(c, t);
  for (Domain* d : {&t, &c, &m}) d->announce_unicast();

  t.masc_node().set_spaces({net::multicast_space()});
  t.masc_node().request_space(65536);
  net.settle();  // waits out the 48h claim waiting period
  c.masc_node().request_space(256);
  net.settle();

  const core::Group group = net::Ipv4Addr::parse("224.0.128.1");
  c.originate_group_range(net::Prefix::parse("224.0.128.0/24"));
  net.settle();
  m.host_join(group);
  net.settle();
  c.send(group);
  net.settle();

  const obs::Snapshot snap = net.metrics_snapshot();
  const obs::HistogramStats claim =
      snap.histogram_stats("masc.claim_grant_latency");
  EXPECT_EQ(claim.count, 2u);  // T's top-level claim + C's child claim
  EXPECT_DOUBLE_EQ(claim.max, 48.0 * 3600.0);  // the waiting period

  EXPECT_GT(snap.histogram_stats("bgp.route_convergence_latency").count, 0u);
  EXPECT_GT(snap.histogram_stats("bgmp.join_propagation_latency").count, 0u);
  EXPECT_GT(snap.histogram_stats("net.delivery_latency").count, 0u);
  // The collision histogram is registered (empty — nothing collided).
  EXPECT_NE(snap.find_histogram("masc.collision_resolution_latency"),
            nullptr);
}

TEST(Instruments, CollisionResolutionLatencySpansCollisionToGrant) {
  // Two top-level siblings claim the same range (deterministic first-fit);
  // the loser's histogram sample covers first collision → eventual grant.
  net::EventQueue events;
  net::Network network(events);
  masc::MascNode::Params params;
  params.pool.strategy = masc::ClaimStrategy::kFirstFit;
  masc::MascNode a(network, 10, "A", params, 1010);
  masc::MascNode b(network, 20, "B", params, 1020);
  masc::MascNode::connect(a, b, masc::MascNode::PeerKind::kSibling);
  a.set_spaces({net::multicast_space()});
  b.set_spaces({net::multicast_space()});
  a.request_space(65536);
  events.run_until(net::SimTime::milliseconds(1));
  b.request_space(65536);  // later timestamp → loses, retries
  events.run(1'000'000);

  ASSERT_EQ(b.collisions_suffered(), 1);
  const obs::Snapshot snap = network.metrics().snapshot();
  const obs::HistogramStats grants =
      snap.histogram_stats("masc.claim_grant_latency");
  EXPECT_EQ(grants.count, 2u);  // both nodes eventually granted
  const obs::HistogramStats collisions =
      snap.histogram_stats("masc.collision_resolution_latency");
  EXPECT_EQ(collisions.count, 1u);  // only the loser resolved a collision
  // Resolution takes at least the restarted waiting period.
  EXPECT_GE(collisions.min, 48.0 * 3600.0);
  // The loser's total grant latency exceeds the winner's single wait.
  EXPECT_GT(grants.max, grants.min);
}

// ----------------------------------------------------------- gauge hygiene

TEST(Snapshots, QuiescentBackToBackSnapshotsReportIdenticalGauges) {
  // Sampled gauges must set() absolute values at refresh time, never
  // accumulate: snapshotting twice with no simulation progress in between
  // has to report the same numbers.
  Internet net;
  Domain& a = net.add_domain({.id = 1, .name = "A"});
  Domain& b = net.add_domain({.id = 2, .name = "B"});
  net.link(a, b);
  a.announce_unicast();
  b.announce_unicast();
  a.originate_group_range(net::Prefix::parse("224.0.128.0/24"));
  net.settle();
  b.host_join(net::Ipv4Addr::parse("224.0.128.1"));
  net.settle();

  const obs::Snapshot first = net.metrics_snapshot();
  const obs::Snapshot second = net.metrics_snapshot();
  std::size_t gauges_compared = 0;
  for (const obs::Sample& s : first.samples) {
    if (s.kind != obs::Sample::Kind::kGauge) continue;
    EXPECT_DOUBLE_EQ(second.gauge_value(s.name), s.value) << s.name;
    ++gauges_compared;
  }
  EXPECT_GT(gauges_compared, 5u);
  // Counters are monotone totals and must match for the same reason.
  for (const obs::Sample& s : first.samples) {
    if (s.kind != obs::Sample::Kind::kCounter) continue;
    EXPECT_EQ(second.counter_value(s.name), s.count) << s.name;
  }
}

}  // namespace
