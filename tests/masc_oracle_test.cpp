// Differential tests for the MASC allocation state machines against
// brute-force oracles (the trie_oracle_test approach): ClaimRegistry vs. a
// flat interval list replaying the documented claim/fold semantics, and
// DomainPool vs. exhaustive scans of its own published invariants —
// blocks aligned, disjoint, inside active prefixes, and a request
// succeeding exactly when a free aligned slot exists.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "masc/pool.hpp"
#include "masc/registry.hpp"
#include "masc/types.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"
#include "net/time.hpp"

namespace masc {
namespace {

using net::Prefix;
using net::SimTime;

// ----------------------------------------------------- registry vs oracle

/// Brute-force reference for ClaimRegistry: a flat entry list with O(n)
/// scans, replaying the header-documented semantics directly.
class RegistryOracle {
 public:
  struct Entry {
    Prefix prefix;
    DomainId owner;
    SimTime expires;
  };

  bool claim(const Prefix& prefix, DomainId owner, SimTime expires,
             SimTime now) {
    for (const Entry& e : entries_) {
      if (e.expires > now && e.owner != owner && e.prefix.overlaps(prefix)) {
        return false;  // collision with a live foreign claim
      }
    }
    // Fold live own overlaps into the new claim; an exact-prefix entry is
    // replaced regardless (the trie node is overwritten).
    std::erase_if(entries_, [&](const Entry& e) {
      return (e.expires > now && e.owner == owner &&
              e.prefix.overlaps(prefix)) ||
             e.prefix == prefix;
    });
    entries_.push_back({prefix, owner, expires});
    return true;
  }

  void release(const Prefix& prefix) {
    std::erase_if(entries_, [&](const Entry& e) { return e.prefix == prefix; });
  }

  void purge_expired(SimTime now) {
    std::erase_if(entries_, [&](const Entry& e) { return e.expires <= now; });
  }

  [[nodiscard]] bool is_free(const Prefix& prefix, SimTime now) const {
    return std::none_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
      return e.expires > now && e.prefix.overlaps(prefix);
    });
  }

  [[nodiscard]] std::optional<DomainId> owner_of(const Prefix& prefix,
                                                 SimTime now) const {
    for (const Entry& e : entries_) {
      if (e.prefix == prefix && e.expires > now) return e.owner;
    }
    return std::nullopt;
  }

  /// Live claims as a comparable sorted set.
  [[nodiscard]] std::vector<std::tuple<std::uint32_t, int, DomainId>> claims(
      SimTime now) const {
    std::vector<std::tuple<std::uint32_t, int, DomainId>> out;
    for (const Entry& e : entries_) {
      if (e.expires > now) {
        out.emplace_back(e.prefix.base().value(), e.prefix.length(), e.owner);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Maximal free decomposition of `space` — same recursion as the
  /// registry, but over the flat list's overlap predicate.
  void free_prefixes(const Prefix& space, SimTime now,
                     std::vector<Prefix>& out) const {
    if (is_free(space, now)) {
      out.push_back(space);
      return;
    }
    const bool covered =
        std::any_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
          return e.expires > now && e.prefix.contains(space);
        });
    if (covered || space.length() == 32) return;
    free_prefixes(space.left_child(), now, out);
    free_prefixes(space.right_child(), now, out);
  }

 private:
  std::vector<Entry> entries_;
};

std::vector<std::tuple<std::uint32_t, int, DomainId>> live_claims(
    const ClaimRegistry& registry, SimTime now) {
  std::vector<std::tuple<std::uint32_t, int, DomainId>> out;
  for (const auto& [prefix, entry] : registry.claims(now)) {
    out.emplace_back(prefix.base().value(), prefix.length(), entry.owner);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RegistryOracle, RandomClaimChurnMatchesBruteForce) {
  const Prefix space = Prefix::parse("224.0.0.0/8");
  net::Rng rng(0xC1A1Full);
  ClaimRegistry registry;
  RegistryOracle oracle;
  SimTime now = SimTime::seconds(0);

  const auto random_prefix = [&]() {
    // Lengths 10..16 inside 224/8: deep enough to nest, shallow enough to
    // collide often.
    const int len = static_cast<int>(rng.uniform_int(10, 16));
    const std::uint64_t slots = 1ull << (len - space.length());
    return space.subprefix_at(len, rng.uniform_int(0, static_cast<std::int64_t>(slots) - 1));
  };

  std::vector<Prefix> touched;
  for (int op = 0; op < 4000; ++op) {
    now = now + SimTime::seconds(rng.uniform_int(0, 30));
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 6) {  // claim
      const Prefix p = random_prefix();
      const auto owner = static_cast<DomainId>(rng.uniform_int(1, 4));
      const SimTime expires = now + SimTime::seconds(rng.uniform_int(1, 600));
      EXPECT_EQ(registry.claim(p, owner, expires, now),
                oracle.claim(p, owner, expires, now))
          << "claim " << p.to_string() << " by " << owner << " at op " << op;
      touched.push_back(p);
    } else if (kind < 8 && !touched.empty()) {  // release
      const Prefix p = touched[rng.index(touched.size())];
      registry.release(p);
      oracle.release(p);
    } else {  // purge
      registry.purge_expired(now);
      oracle.purge_expired(now);
    }

    // Probe agreement on a few random prefixes every step, full-state
    // agreement periodically.
    for (int probe = 0; probe < 4; ++probe) {
      const Prefix p = random_prefix();
      ASSERT_EQ(registry.is_free(p, now), oracle.is_free(p, now))
          << "is_free(" << p.to_string() << ") diverged at op " << op;
      ASSERT_EQ(registry.conflicting(p, now).has_value(),
                !oracle.is_free(p, now));
      ASSERT_EQ(registry.owner_of(p, now), oracle.owner_of(p, now));
    }
    if (op % 200 == 0) {
      ASSERT_EQ(live_claims(registry, now), oracle.claims(now))
          << "live claim sets diverged at op " << op;
      std::vector<Prefix> expect;
      oracle.free_prefixes(space, now, expect);
      ASSERT_EQ(registry.free_prefixes(space, now), expect)
          << "free decomposition diverged at op " << op;
    }
  }
}

TEST(RegistryRegression, ExpiredDeepEntryDoesNotShadowLiveAncestor) {
  // Found by the differential test: expiry is lazy, and the overlap scan
  // used to consult only the DEEPEST stored ancestor of a probe. An
  // expired /12 sitting on the path masked a live /10 above it, so space
  // inside a live claim was reported free (and could be claimed again).
  ClaimRegistry registry;
  const SimTime start = SimTime::seconds(0);
  ASSERT_TRUE(registry.claim(Prefix::parse("224.16.0.0/12"), 2,
                             SimTime::seconds(100), start));
  const SimTime later = SimTime::seconds(200);  // the /12 has now lapsed
  ASSERT_TRUE(registry.claim(Prefix::parse("224.0.0.0/10"), 1,
                             SimTime::days(1), later));
  const Prefix probe = Prefix::parse("224.16.0.0/14");  // under both
  EXPECT_FALSE(registry.is_free(probe, later));
  const auto hit = registry.conflicting(probe, later);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second.owner, 1u);  // the live /10, not the expired /12
  // And the whole /10 decomposes to no free space at all.
  EXPECT_TRUE(
      registry.free_prefixes(Prefix::parse("224.0.0.0/10"), later).empty());
}

// --------------------------------------------------------- pool vs oracle

struct PoolModel {
  /// Mirror of the pool's published state, rebuilt from its accessors.
  std::vector<ClaimedPrefix> prefixes;
  std::vector<Block> blocks;
};

PoolModel snapshot(const DomainPool& pool, const std::set<std::uint64_t>& ids,
                   const std::vector<Block>& ours) {
  PoolModel m;
  m.prefixes = pool.prefixes();
  for (const Block& b : ours) {
    if (ids.contains(b.id)) m.blocks.push_back(b);
  }
  return m;
}

/// Brute force: does any active prefix contain a free, aligned slot of
/// `len`? (The pool's own first-fit placement must succeed iff this does.)
bool slot_exists(const PoolModel& m, int len) {
  for (const ClaimedPrefix& cp : m.prefixes) {
    if (!cp.active || cp.prefix.length() > len) continue;
    const std::uint64_t slots = 1ull << (len - cp.prefix.length());
    for (std::uint64_t s = 0; s < slots; ++s) {
      const Prefix candidate = cp.prefix.subprefix_at(len, s);
      const bool occupied =
          std::any_of(m.blocks.begin(), m.blocks.end(), [&](const Block& b) {
            return b.range.overlaps(candidate);
          });
      if (!occupied) return true;
    }
  }
  return false;
}

TEST(PoolOracle, RandomBlockChurnKeepsPublishedInvariants) {
  PoolParams params;
  params.strategy = ClaimStrategy::kFirstFit;  // deterministic placement
  params.max_prefixes = 4;
  DomainPool pool(1, params);
  net::Rng rng(0xB10C5ull);
  SimTime now = SimTime::seconds(0);

  // Hand the pool a few /24s out of disjoint space, as MASC would.
  const std::vector<Prefix> claimable = {
      Prefix::parse("224.1.1.0/24"), Prefix::parse("224.1.3.0/24"),
      Prefix::parse("224.9.0.0/24"), Prefix::parse("225.4.4.0/24")};
  std::size_t next_claim = 0;
  pool.add_prefix(claimable[next_claim++], now + SimTime::days(30));

  std::vector<Block> issued;       // every block ever returned
  std::set<std::uint64_t> live;    // ids we have not released / seen expire
  for (int op = 0; op < 2000; ++op) {
    now = now + SimTime::seconds(rng.uniform_int(0, 120));
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 6) {  // request
      const std::uint64_t addresses = 1ull << rng.uniform_int(0, 6);
      const int len = mask_length_for(addresses);
      const PoolModel before = snapshot(pool, live, issued);
      const SimTime lifetime = SimTime::seconds(rng.uniform_int(60, 3600));
      const auto block = pool.request_block(addresses, now, lifetime);
      ASSERT_EQ(block.has_value(), slot_exists(before, len))
          << "request_block(" << addresses << ") at op " << op
          << " disagrees with the brute-force free-slot scan";
      if (block) {
        // Aligned, correctly sized, inside an active prefix, disjoint from
        // every other live block.
        EXPECT_EQ(block->range.length(), len);
        EXPECT_TRUE(std::any_of(
            before.prefixes.begin(), before.prefixes.end(),
            [&](const ClaimedPrefix& cp) {
              return cp.active && cp.prefix.contains(block->range);
            }));
        for (const Block& other : before.blocks) {
          EXPECT_FALSE(other.range.overlaps(block->range))
              << block->range.to_string() << " overlaps live block "
              << other.range.to_string() << " at op " << op;
        }
        issued.push_back(*block);
        live.insert(block->id);
      } else if (pool.prefixes().size() <
                 static_cast<std::size_t>(params.max_prefixes) &&
                 next_claim < claimable.size()) {
        // Out of space: grow like the owner would after a claim.
        pool.add_prefix(claimable[next_claim++], now + SimTime::days(30));
      }
    } else if (kind < 8 && !live.empty()) {  // release
      auto it = live.begin();
      std::advance(it, rng.index(live.size()));
      EXPECT_TRUE(pool.release_block(*it));
      live.erase(it);
    } else {  // age
      (void)pool.age(now);
      std::erase_if(live, [&](std::uint64_t id) {
        const auto it =
            std::find_if(issued.begin(), issued.end(),
                         [&](const Block& b) { return b.id == id; });
        return it != issued.end() && it->expires <= now;
      });
    }

    // Cross-check the aggregate accounting every step.
    ASSERT_EQ(pool.live_block_count(), live.size()) << "at op " << op;
    std::uint64_t allocated = 0;
    for (const Block& b : issued) {
      if (live.contains(b.id)) {
        allocated += 1ull << (32 - b.range.length());
      }
    }
    ASSERT_EQ(pool.allocated_addresses(), allocated) << "at op " << op;
  }
  // Releasing everything must leave the pool empty of allocations.
  for (const std::uint64_t id : live) EXPECT_TRUE(pool.release_block(id));
  EXPECT_EQ(pool.allocated_addresses(), 0u);
  EXPECT_EQ(pool.live_block_count(), 0u);
}

}  // namespace
}  // namespace masc
