// Tests for BGMP forwarding-state aggregation (§7) and soft prune state.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/domain.hpp"
#include "core/internet.hpp"
#include "net/prefix.hpp"

namespace core {
namespace {

using net::Ipv4Addr;
using net::Prefix;

Group nth_group(int n) {
  return Ipv4Addr{Ipv4Addr::parse("224.0.128.0").value() +
                  static_cast<std::uint32_t>(n)};
}

struct StateNet {
  Internet net;
  Domain& root;
  Domain& transit;
  Domain& m1;
  Domain& m2;

  StateNet()
      : root(net.add_domain({.id = 1, .name = "root"})),
        transit(net.add_domain({.id = 2, .name = "transit"})),
        m1(net.add_domain({.id = 3, .name = "m1"})),
        m2(net.add_domain({.id = 4, .name = "m2"})) {
    net.link(root, transit);
    net.link(transit, m1);
    net.link(transit, m2);
    root.originate_group_range(Prefix::parse("224.0.128.0/24"));
    net.settle();
  }
};

TEST(StateAggregation, IdenticalTargetListsCollapseToOneEntry) {
  StateNet t;
  for (int g = 0; g < 16; ++g) {
    t.m1.host_join(nth_group(g));
    t.m2.host_join(nth_group(g));
  }
  t.net.settle();
  EXPECT_EQ(t.transit.bgmp_router().entry_count(), 16u);
  // All sixteen groups form one aligned /28 with one target list.
  EXPECT_EQ(t.transit.bgmp_router().aggregated_star_count(), 1u);
}

TEST(StateAggregation, DivergentMemberSetsResistAggregation) {
  StateNet t;
  for (int g = 0; g < 16; ++g) {
    if (g % 2 == 0) {
      t.m1.host_join(nth_group(g));
    } else {
      t.m2.host_join(nth_group(g));
    }
  }
  t.net.settle();
  // Alternating signatures: no sibling pair matches.
  EXPECT_EQ(t.transit.bgmp_router().aggregated_star_count(), 16u);
}

TEST(StateAggregation, BlockwiseMembershipAggregatesPerBlock) {
  StateNet t;
  for (int g = 0; g < 8; ++g) t.m1.host_join(nth_group(g));        // /29
  for (int g = 8; g < 16; ++g) t.m2.host_join(nth_group(g));       // /29
  t.net.settle();
  EXPECT_EQ(t.transit.bgmp_router().aggregated_star_count(), 2u);
}

TEST(StateAggregation, MisalignedRangesSplitIntoCidrBlocks) {
  StateNet t;
  // Groups 1..6 (inclusive): the minimal CIDR cover of {1,2,3,4,5,6} with
  // one signature is {1/32, 2/31, 4/31, 6/32} = 4 entries.
  for (int g = 1; g <= 6; ++g) t.m1.host_join(nth_group(g));
  t.net.settle();
  EXPECT_EQ(t.transit.bgmp_router().entry_count(), 6u);
  EXPECT_EQ(t.transit.bgmp_router().aggregated_star_count(), 4u);
}

TEST(StateAggregation, EmptyRouterHasZero) {
  StateNet t;
  EXPECT_EQ(t.transit.bgmp_router().aggregated_star_count(), 0u);
}

// ----------------------------------------------------- soft prune state

TEST(SoftPruneState, ExpiredPruneRestoresSharedTreeFlow) {
  // source--root--member: member builds a branch via a direct
  // source--member link, pruning S off the root-side path; the link then
  // dies. After the prune lifetime the shared tree serves S again.
  Internet net;
  Domain& root = net.add_domain({.id = 1, .name = "root"});
  Domain& member = net.add_domain({.id = 2, .name = "member"});
  Domain& source = net.add_domain({.id = 3, .name = "source"});
  std::map<const Domain*, int> copies;
  net.set_delivery_observer(
      [&](const Delivery& d) { ++copies[d.domain]; });
  net.link(root, member);
  net.link(root, source);
  net.link(source, member);
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  source.announce_unicast();
  net.settle();
  const Group group = nth_group(1);
  member.host_join(group);
  net.settle();
  const Ipv4Addr s = source.host_address(1);
  member.build_source_branch(s, group);
  net.settle();
  copies.clear();
  source.send(group);
  net.settle();
  EXPECT_EQ(copies[&member], 1);  // via the branch, shared path pruned

  net.set_link_state(source, member, false);
  net.settle();  // prune state expires during the settle
  copies.clear();
  source.send(group);
  net.settle();
  EXPECT_EQ(copies[&member], 1);  // shared tree again
}

TEST(SoftPruneState, LiveBranchReprunesAfterExpiry) {
  // Same shape, but the branch stays alive: after the upstream prune
  // expires, a stray tree copy reaching the member is re-pruned
  // data-driven, and the member still sees exactly one copy per packet.
  Internet net;
  Domain& root = net.add_domain({.id = 1, .name = "root"});
  Domain& member = net.add_domain({.id = 2, .name = "member"});
  Domain& source = net.add_domain({.id = 3, .name = "source"});
  std::map<const Domain*, int> copies;
  net.set_delivery_observer(
      [&](const Delivery& d) { ++copies[d.domain]; });
  net.link(root, member);
  net.link(root, source);
  net.link(source, member);
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  source.announce_unicast();
  net.settle();
  const Group group = nth_group(1);
  member.host_join(group);
  net.settle();
  const Ipv4Addr s = source.host_address(1);
  member.build_source_branch(s, group);
  net.settle();  // prune state installed… and expires during settle
  for (int packet = 0; packet < 3; ++packet) {
    copies.clear();
    source.send(group);
    net.settle();
    EXPECT_EQ(copies[&member], 1) << "packet " << packet;
  }
}

}  // namespace
}  // namespace core
