// Differential oracle for the ladder-queue EventQueue: every workload is
// mirrored into a std::multimap<(time, seq)> reference, and the firing
// order observed from the real queue must match the reference's exact
// (time, seq) total order. The workloads deliberately hit the structural
// seams of the ladder — same-timestamp bursts (one bucket, ordered only by
// seq), wide horizon mixes (bottom + rungs + overflow all live), rung
// exhaustion and the coverage gaps it leaves behind, cancellations of
// already-fired ids, reserved-seq scheduling, and scheduling from inside a
// running event (reentrancy).
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/event.hpp"
#include "net/network.hpp"
#include "net/rng.hpp"
#include "net/time.hpp"

namespace {

using net::EventQueue;
using net::SimTime;

using OrderKey = std::pair<std::int64_t, std::uint64_t>;  // (at ns, seq)

/// Drives an EventQueue and a multimap reference side by side. Each
/// scheduled event records its (time, seq) key; popping compares the
/// observed firing order against the reference's begin().
class Oracle {
 public:
  explicit Oracle(EventQueue& queue) : queue_(queue) {}

  net::EventId schedule(SimTime at, std::uint64_t payload) {
    const std::uint64_t seq = queue_.reserve_seq();
    return schedule_reserved(at, seq, payload);
  }

  net::EventId schedule_reserved(SimTime at, std::uint64_t seq,
                                 std::uint64_t payload) {
    const OrderKey key{at.ns(), seq};
    const net::EventId id = queue_.schedule_reserved(
        at, seq, [this, key, payload] { fired_.push_back({key, payload}); });
    reference_.emplace(key, payload);
    ids_.emplace_back(id, key);
    return id;
  }

  /// Cancels `id` in both structures; returns what the queue reported.
  bool cancel(net::EventId id) {
    const bool cancelled = queue_.cancel(id);
    if (cancelled) {
      for (const auto& [known, key] : ids_) {
        if (known == id) {
          const auto range = reference_.equal_range(key);
          EXPECT_NE(range.first, range.second) << "oracle desync";
          if (range.first != range.second) reference_.erase(range.first);
          break;
        }
      }
    }
    return cancelled;
  }

  /// Steps the queue once and checks the fired event was the reference
  /// front. Returns false when both sides agree the queue is drained.
  bool step_and_check() {
    const std::size_t before = fired_.size();
    const bool stepped = queue_.step();
    if (!stepped) {
      EXPECT_TRUE(reference_.empty())
          << "queue drained but the reference still holds "
          << reference_.size() << " events";
      return false;
    }
    EXPECT_EQ(fired_.size(), before + 1) << "step() fired nothing";
    EXPECT_FALSE(reference_.empty()) << "queue fired an unknown event";
    if (fired_.size() != before + 1 || reference_.empty()) return true;
    const auto& [key, payload] = fired_.back();
    EXPECT_EQ(key, reference_.begin()->first)
        << "fired out of (time, seq) order";
    EXPECT_EQ(payload, reference_.begin()->second);
    reference_.erase(reference_.begin());
    return true;
  }

  void drain_and_check() {
    while (step_and_check()) {
    }
    EXPECT_EQ(queue_.pending(), 0u);
  }

  [[nodiscard]] std::size_t live() const { return reference_.size(); }
  [[nodiscard]] const std::vector<std::pair<OrderKey, std::uint64_t>>& fired()
      const {
    return fired_;
  }

 private:
  EventQueue& queue_;
  std::multimap<OrderKey, std::uint64_t> reference_;
  std::vector<std::pair<net::EventId, OrderKey>> ids_;
  std::vector<std::pair<OrderKey, std::uint64_t>> fired_;
};

bool coin(net::Rng& rng, double p) { return rng.chance(p); }

TEST(EventOracle, RandomChurnMatchesMultimapOrder) {
  net::Rng rng(20260807);
  EventQueue queue;
  Oracle oracle(queue);
  std::vector<net::EventId> cancellable;
  std::uint64_t payload = 0;
  // Interleave schedule / cancel / pop over a wide horizon so all three
  // tiers (bottom, rungs, overflow) stay live simultaneously.
  for (int round = 0; round < 200; ++round) {
    const int schedules = static_cast<int>(rng.uniform_int(1, 40));
    for (int i = 0; i < schedules; ++i) {
      // Mix: dense near band, medium band, sparse far tail.
      SimTime at;
      const int band = static_cast<int>(rng.uniform_int(0, 9));
      if (band < 6) {
        at = queue.now() + SimTime::milliseconds(rng.uniform_int(0, 50));
      } else if (band < 9) {
        at = queue.now() + SimTime::seconds(rng.uniform_int(1, 120));
      } else {
        at = queue.now() + SimTime::hours(rng.uniform_int(1, 48));
      }
      const net::EventId id = oracle.schedule(at, payload++);
      if (coin(rng, 0.3)) cancellable.push_back(id);
    }
    if (!cancellable.empty() && coin(rng, 0.5)) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cancellable.size()) - 1));
      oracle.cancel(cancellable[pick]);
      cancellable.erase(cancellable.begin() +
                        static_cast<std::ptrdiff_t>(pick));
    }
    const int pops = static_cast<int>(rng.uniform_int(0, 30));
    for (int i = 0; i < pops && oracle.step_and_check(); ++i) {
    }
  }
  oracle.drain_and_check();
}

TEST(EventOracle, SameTimestampBurstFiresInScheduleOrder) {
  EventQueue queue;
  Oracle oracle(queue);
  // A single-quantum burst far in the future: lands in the overflow tier,
  // gets bucketed, and must come out ordered purely by seq.
  const SimTime burst_at = SimTime::hours(2);
  for (std::uint64_t i = 0; i < 5000; ++i) oracle.schedule(burst_at, i);
  // Plus a few earlier events so the burst is not the immediate bottom.
  for (std::uint64_t i = 0; i < 10; ++i) {
    oracle.schedule(SimTime::seconds(static_cast<std::int64_t>(i) + 1),
                    10000 + i);
  }
  oracle.drain_and_check();
  // The burst section of the firing record must be strictly seq-ascending.
  const auto& fired = oracle.fired();
  ASSERT_EQ(fired.size(), 5010u);
  for (std::size_t i = 11; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1].first.second, fired[i].first.second);
  }
}

TEST(EventOracle, StaleAndDoubleCancels) {
  EventQueue queue;
  Oracle oracle(queue);
  const net::EventId a = oracle.schedule(SimTime::milliseconds(1), 1);
  const net::EventId b = oracle.schedule(SimTime::milliseconds(2), 2);
  EXPECT_TRUE(oracle.cancel(a));
  EXPECT_FALSE(oracle.cancel(a)) << "double cancel must be a no-op";
  EXPECT_TRUE(oracle.step_and_check());  // fires b
  EXPECT_FALSE(oracle.cancel(b)) << "cancelling a fired id must fail";
  EXPECT_FALSE(queue.step());
  // The slot was recycled: a fresh event must not be cancellable through
  // the stale ids.
  const net::EventId c = oracle.schedule(SimTime::milliseconds(3), 3);
  EXPECT_FALSE(oracle.cancel(a));
  EXPECT_FALSE(oracle.cancel(b));
  EXPECT_TRUE(oracle.cancel(c));
  oracle.drain_and_check();
}

TEST(EventOracle, ScheduleDuringPopReentrancy) {
  // Events that schedule more events while running — including at the
  // current instant — must still fire in exact (time, seq) order. This is
  // the delivery-handler pattern: a BGP update handler sends messages,
  // which schedule deliveries, from inside run_entry().
  EventQueue queue;
  std::vector<std::uint64_t> fired;
  std::multimap<OrderKey, std::uint64_t> reference;
  std::uint64_t payload = 0;
  net::Rng rng(7);
  // Recursive scheduling closure: each event spawns up to 3 children at
  // now + [0, 20ms) until the budget runs out.
  int budget = 3000;
  std::function<void(std::uint64_t)> spawn = [&](std::uint64_t my_payload) {
    fired.push_back(my_payload);
    const int children = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < children && budget > 0; ++i) {
      --budget;
      const SimTime at =
          queue.now() + SimTime::milliseconds(rng.uniform_int(0, 20));
      const std::uint64_t seq = queue.reserve_seq();
      const std::uint64_t p = ++payload;
      reference.emplace(OrderKey{at.ns(), seq}, p);
      queue.schedule_reserved(at, seq, [&spawn, p] { spawn(p); });
    }
  };
  for (int i = 0; i < 50; ++i) {
    --budget;
    const SimTime at = SimTime::milliseconds(rng.uniform_int(1, 10));
    const std::uint64_t seq = queue.reserve_seq();
    const std::uint64_t p = ++payload;
    reference.emplace(OrderKey{at.ns(), seq}, p);
    queue.schedule_reserved(at, seq, [&spawn, p] { spawn(p); });
  }
  while (queue.step()) {
  }
  // Replay the reference in order and compare.
  ASSERT_EQ(fired.size(), reference.size());
  std::size_t i = 0;
  for (const auto& [key, p] : reference) {
    EXPECT_EQ(fired[i], p) << "divergence at firing index " << i;
    ++i;
  }
}

TEST(EventOracle, ReservedSeqInterleavesExactly) {
  // A reserved seq scheduled *later* must still fire at its reserved
  // position among events scheduled in between — the contract delivery
  // batching depends on (FIFO heads keep their original global slot).
  EventQueue queue;
  Oracle oracle(queue);
  const SimTime at = SimTime::milliseconds(5);
  const std::uint64_t early = queue.reserve_seq();
  oracle.schedule(at, 1);  // takes the next seq
  oracle.schedule(at, 2);
  // Now schedule the reserved one — older seq, scheduled last.
  oracle.schedule_reserved(at, early, 0);
  oracle.drain_and_check();
  const auto& fired = oracle.fired();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].second, 0u) << "reserved seq must fire first";
  EXPECT_EQ(fired[1].second, 1u);
  EXPECT_EQ(fired[2].second, 2u);
}

TEST(EventOracle, RungExhaustionCoverageGap) {
  // Regression shape for the exhausted-rung path: drain a rung down to
  // its last bucket, then schedule into the time span that rung used to
  // cover. The key must route to a still-live tier (never a popped one)
  // and fire in exact order.
  EventQueue queue;
  Oracle oracle(queue);
  // A wide spread forces a rung with coarse buckets.
  for (std::uint64_t i = 0; i < 512; ++i) {
    oracle.schedule(SimTime::seconds(static_cast<std::int64_t>(i * 7) + 1),
                    i);
  }
  // Drain most of it, so the rung is nearly exhausted.
  for (int i = 0; i < 500 && oracle.step_and_check(); ++i) {
  }
  // Schedule into the nearly-consumed span (just after now) and far past
  // the rung's coverage, interleaved.
  for (std::uint64_t i = 0; i < 64; ++i) {
    oracle.schedule(queue.now() + SimTime::milliseconds(1 + i), 1000 + i);
    oracle.schedule(SimTime::hours(1) + SimTime::seconds(i), 2000 + i);
  }
  oracle.drain_and_check();
}

TEST(EventOracle, PeekNextMatchesPopAndDiscardsCancelled) {
  EventQueue queue;
  Oracle oracle(queue);
  std::vector<net::EventId> ids;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ids.push_back(
        oracle.schedule(SimTime::milliseconds((i * 37) % 50 + 1), i));
  }
  // Cancel every third event; peek must never surface a cancelled key.
  for (std::size_t i = 0; i < ids.size(); i += 3) oracle.cancel(ids[i]);
  while (true) {
    const auto peek = queue.peek_next();
    if (!peek.has_value()) break;
    const std::size_t before = oracle.fired().size();
    ASSERT_TRUE(oracle.step_and_check());
    const auto& [key, payload] = oracle.fired()[before];
    EXPECT_EQ(peek->at.ns(), key.first) << "peek disagreed with pop";
    EXPECT_EQ(peek->seq, key.second);
  }
  EXPECT_EQ(oracle.live(), 0u);
}

// ------------------------------------------------- in-flight gauge audit
//
// A session reset (drop-when-down channel going down) bumps the channel
// epoch; messages of the old epoch stay queued in the per-direction
// flight lists until their delivery time, where they are discarded. The
// net.messages_in_flight gauge must count only live-epoch messages — it
// used to count the zombies too, overstating flight depth after every
// reset until the dead entries' delivery times passed.

struct FlightMessage final : net::Message {
  [[nodiscard]] std::string describe() const override { return "flight"; }
};

class FlightEndpoint final : public net::Endpoint {
 public:
  void on_message(net::ChannelId, std::unique_ptr<net::Message>) override {
    ++delivered;
  }
  [[nodiscard]] std::string name() const override { return "flight"; }
  int delivered = 0;
};

TEST(EventOracle, InFlightGaugeExcludesEpochDeadZombies) {
  EventQueue queue;
  net::Network network(queue);
  FlightEndpoint a;
  FlightEndpoint b;
  const net::ChannelId ch = network.connect(a, b, SimTime::seconds(5));
  network.set_drop_when_down(ch, true);

  for (int i = 0; i < 3; ++i) {
    network.send(ch, a, std::make_unique<FlightMessage>());
  }
  EXPECT_EQ(network.metrics().snapshot().gauge_value(
                "net.messages_in_flight"),
            3.0);

  // Session reset: the three messages become epoch-dead zombies that stay
  // queued until t=5s. New-session messages are the only live flight.
  network.set_up(ch, false);
  network.set_up(ch, true);
  for (int i = 0; i < 2; ++i) {
    network.send(ch, b, std::make_unique<FlightMessage>());
  }
  EXPECT_EQ(network.metrics().snapshot().gauge_value(
                "net.messages_in_flight"),
            2.0)
      << "gauge counted epoch-dead zombies";

  queue.run();
  EXPECT_EQ(a.delivered, 2);  // the new-session messages
  EXPECT_EQ(b.delivered, 0);  // the old session died with the reset
  EXPECT_EQ(network.metrics().snapshot().gauge_value(
                "net.messages_in_flight"),
            0.0);
}

}  // namespace
