// Failure-injection tests: BGP session resets and BGMP tree repair under
// link failures (the §3 stability requirement — trees should survive and
// re-form rather than strand members).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "bgp/speaker.hpp"
#include "check/invariant.hpp"
#include "core/domain.hpp"
#include "core/internet.hpp"
#include "net/event.hpp"
#include "net/network.hpp"

namespace core {
namespace {

using net::Ipv4Addr;
using net::Prefix;

const Group kGroup = Ipv4Addr::parse("224.0.128.1");

// ------------------------------------------------------------ BGP resets

struct BgpNet {
  net::EventQueue events;
  net::Network network{events};
  std::vector<std::unique_ptr<bgp::Speaker>> speakers;

  bgp::Speaker& speaker(bgp::DomainId as, const std::string& name) {
    speakers.push_back(std::make_unique<bgp::Speaker>(network, as, name));
    return *speakers.back();
  }
  void settle() { events.run(2'000'000); }
};

TEST(BgpFailure, SessionLossFlushesLearnedRoutes) {
  BgpNet t;
  bgp::Speaker& s1 = t.speaker(1, "s1");
  bgp::Speaker& s2 = t.speaker(2, "s2");
  const net::ChannelId ch =
      bgp::Speaker::connect(s1, s2, bgp::Relationship::kLateral);
  s1.originate(bgp::RouteType::kGroup, Prefix::parse("224.1.0.0/16"));
  t.settle();
  ASSERT_TRUE(s2.lookup(bgp::RouteType::kGroup, Ipv4Addr::parse("224.1.0.1"))
                  .has_value());
  t.network.set_up(ch, false);
  t.settle();
  // Hold-timer semantics: the learned route is gone.
  EXPECT_FALSE(s2.lookup(bgp::RouteType::kGroup, Ipv4Addr::parse("224.1.0.1"))
                   .has_value());
  EXPECT_EQ(s2.rib(bgp::RouteType::kGroup).size(), 0u);
}

TEST(BgpFailure, SessionRecoveryResynchronizesFullTable) {
  BgpNet t;
  bgp::Speaker& s1 = t.speaker(1, "s1");
  bgp::Speaker& s2 = t.speaker(2, "s2");
  const net::ChannelId ch =
      bgp::Speaker::connect(s1, s2, bgp::Relationship::kLateral);
  s1.originate(bgp::RouteType::kGroup, Prefix::parse("224.1.0.0/16"));
  s1.originate(bgp::RouteType::kUnicast, Prefix::parse("10.1.0.0/16"));
  t.settle();
  t.network.set_up(ch, false);
  t.settle();
  // Changes during the outage must surface after re-establishment.
  s1.originate(bgp::RouteType::kGroup, Prefix::parse("239.0.0.0/8"));
  s1.withdraw(bgp::RouteType::kUnicast, Prefix::parse("10.1.0.0/16"));
  t.settle();
  t.network.set_up(ch, true);
  t.settle();
  EXPECT_TRUE(s2.lookup(bgp::RouteType::kGroup, Ipv4Addr::parse("224.1.0.1"))
                  .has_value());
  EXPECT_TRUE(s2.lookup(bgp::RouteType::kGroup, Ipv4Addr::parse("239.1.1.1"))
                  .has_value());
  EXPECT_FALSE(s2.lookup(bgp::RouteType::kUnicast, Ipv4Addr::parse("10.1.0.1"))
                   .has_value());
}

TEST(BgpFailure, FailoverToAlternatePath) {
  // Triangle: s3 prefers the direct link to s1; when it dies, the route
  // via s2 takes over; when it heals, the direct route returns.
  BgpNet t;
  bgp::Speaker& s1 = t.speaker(1, "s1");
  bgp::Speaker& s2 = t.speaker(2, "s2");
  bgp::Speaker& s3 = t.speaker(3, "s3");
  bgp::Speaker::connect(s1, s2, bgp::Relationship::kLateral);
  bgp::Speaker::connect(s2, s3, bgp::Relationship::kLateral);
  const net::ChannelId direct =
      bgp::Speaker::connect(s1, s3, bgp::Relationship::kLateral);
  s1.originate(bgp::RouteType::kGroup, Prefix::parse("224.1.0.0/16"));
  t.settle();
  ASSERT_EQ(s3.lookup(bgp::RouteType::kGroup, Ipv4Addr::parse("224.1.0.1"))
                ->next_hop,
            &s1);
  t.network.set_up(direct, false);
  t.settle();
  const auto via_s2 =
      s3.lookup(bgp::RouteType::kGroup, Ipv4Addr::parse("224.1.0.1"));
  ASSERT_TRUE(via_s2.has_value());
  EXPECT_EQ(via_s2->next_hop, &s2);
  EXPECT_EQ(via_s2->route.as_path.size(), 2u);
  t.network.set_up(direct, true);
  t.settle();
  EXPECT_EQ(s3.lookup(bgp::RouteType::kGroup, Ipv4Addr::parse("224.1.0.1"))
                ->next_hop,
            &s1);
}

TEST(BgpFailure, InFlightUpdatesDieWithTheSession) {
  // Regression (found by the chaos checkers): an update already in flight
  // on a drop-when-down channel used to be delivered after the session
  // reset, resurrecting a route the flush had just removed — a candidate
  // pointing at a dead session.
  BgpNet t;
  bgp::Speaker& s1 = t.speaker(1, "s1");
  bgp::Speaker& s2 = t.speaker(2, "s2");
  const net::ChannelId ch =
      bgp::Speaker::connect(s1, s2, bgp::Relationship::kLateral);
  s1.originate(bgp::RouteType::kGroup, Prefix::parse("224.1.0.0/16"));
  // No settle: the update is still in flight when the session resets.
  t.network.set_up(ch, false);
  t.settle();
  EXPECT_FALSE(s2.lookup(bgp::RouteType::kGroup, Ipv4Addr::parse("224.1.0.1"))
                   .has_value());
  EXPECT_EQ(s2.rib(bgp::RouteType::kGroup).size(), 0u);
}

// -------------------------------------------------------- BGMP tree repair

struct RingNet {
  // root --- t1 --- member      (short path via t1)
  //   \------ t2 -----/          (backup path via t2)
  Internet net;
  Domain& root;
  Domain& t1;
  Domain& t2;
  Domain& member;
  std::map<const Domain*, std::vector<int>> hops;

  RingNet()
      : root(net.add_domain({.id = 1, .name = "root"})),
        t1(net.add_domain({.id = 2, .name = "t1"})),
        t2(net.add_domain({.id = 3, .name = "t2"})),
        member(net.add_domain({.id = 4, .name = "member"})) {
    net.set_delivery_observer([this](const Delivery& d) {
      hops[d.domain].push_back(d.hops);
    });
    net.link(root, t1);
    net.link(t1, member);
    net.link(root, t2);
    net.link(t2, member);
    root.originate_group_range(Prefix::parse("224.0.128.0/24"));
    root.announce_unicast();
    net.settle();
  }
};

TEST(BgmpFailure, TreeRepairsAroundFailedLink) {
  RingNet r;
  r.member.host_join(kGroup);
  r.net.settle();
  // The join went via one transit (say t1, the first-created path).
  const bool via_t1 = r.t1.bgmp_router().on_tree(kGroup);
  Domain& used = via_t1 ? r.t1 : r.t2;
  Domain& spare = via_t1 ? r.t2 : r.t1;
  ASSERT_FALSE(spare.bgmp_router().on_tree(kGroup));

  // Kill the member-side link of the used path.
  r.net.set_link_state(r.member, used, false);
  r.net.settle();
  // The tree re-formed through the spare transit.
  EXPECT_TRUE(r.member.bgmp_router().on_tree(kGroup));
  EXPECT_TRUE(spare.bgmp_router().on_tree(kGroup));

  r.hops.clear();
  r.root.send(kGroup);
  r.net.settle();
  ASSERT_EQ(r.hops[&r.member].size(), 1u);
  EXPECT_EQ(r.hops[&r.member][0], 2);
}

TEST(BgmpFailure, UpstreamSideStateIsPrunedOrExpired) {
  RingNet r;
  r.member.host_join(kGroup);
  r.net.settle();
  const bool via_t1 = r.t1.bgmp_router().on_tree(kGroup);
  Domain& used = via_t1 ? r.t1 : r.t2;
  r.net.set_link_state(r.member, used, false);
  r.net.settle();
  // The old transit lost its only child: its entry is gone and it told
  // the root; the root keeps serving the repaired path only.
  EXPECT_FALSE(used.bgmp_router().on_tree(kGroup));
  const bgmp::GroupEntry* at_root = r.root.bgmp_router().star_entry(kGroup);
  ASSERT_NE(at_root, nullptr);
  EXPECT_EQ(at_root->children.size(), 1u);
}

TEST(BgmpFailure, RootSideLinkFailureAlsoRepairs) {
  RingNet r;
  r.member.host_join(kGroup);
  r.net.settle();
  const bool via_t1 = r.t1.bgmp_router().on_tree(kGroup);
  Domain& used = via_t1 ? r.t1 : r.t2;
  // Kill the ROOT-side link of the used path: the transit's parent dies.
  r.net.set_link_state(r.root, used, false);
  r.net.settle();
  r.hops.clear();
  r.root.send(kGroup);
  r.net.settle();
  ASSERT_EQ(r.hops[&r.member].size(), 1u) << "member lost the group";
}

TEST(BgmpFailure, MemberSurvivesRepeatedFlaps) {
  RingNet r;
  r.member.host_join(kGroup);
  r.net.settle();
  for (int flap = 0; flap < 3; ++flap) {
    r.net.set_link_state(r.member, r.t1, false);
    r.net.settle();
    r.net.set_link_state(r.member, r.t1, true);
    r.net.settle();
  }
  r.hops.clear();
  r.root.send(kGroup);
  r.net.settle();
  EXPECT_EQ(r.hops[&r.member].size(), 1u);
}

TEST(BgmpFailure, TotalPartitionThenRecoveryViaRejoin) {
  RingNet r;
  r.member.host_join(kGroup);
  r.net.settle();
  // Cut both paths: repair has nowhere to go.
  r.net.set_link_state(r.member, r.t1, false);
  r.net.set_link_state(r.member, r.t2, false);
  r.net.settle();
  r.hops.clear();
  r.root.send(kGroup);
  r.net.settle();
  EXPECT_TRUE(r.hops[&r.member].empty());
  // Heal; a leave/re-join restores the tree (repair retries were spent).
  r.net.set_link_state(r.member, r.t1, true);
  r.net.set_link_state(r.member, r.t2, true);
  r.net.settle();
  r.member.host_leave(kGroup);
  r.net.settle();
  r.member.host_join(kGroup);
  r.net.settle();
  r.hops.clear();
  r.root.send(kGroup);
  r.net.settle();
  EXPECT_EQ(r.hops[&r.member].size(), 1u);
}

std::string violations_text(const std::vector<check::Violation>& violations) {
  std::string out;
  for (const check::Violation& v : violations) {
    out += "[" + v.invariant + "] " + v.subject + ": " + v.detail + "\n";
  }
  return out;
}

TEST(BgmpFailure, MemberCrashRestartRejoinsAndReconverges) {
  // §4.1 crash model: BGMP soft state dies with the router, but MIGP
  // membership and MASC allocations are stable storage. After the restart
  // the domain re-expresses membership, the tree re-forms, and the full
  // invariant suite holds on the converged state.
  RingNet r;
  r.member.host_join(kGroup);
  r.net.settle();
  r.net.crash_restart_domain(r.member);
  r.net.settle();
  EXPECT_TRUE(r.member.bgmp_router().on_tree(kGroup));
  r.hops.clear();
  r.root.send(kGroup);
  r.net.settle();
  ASSERT_EQ(r.hops[&r.member].size(), 1u) << "member lost the group";
  const auto violations = check::CheckerSuite::standard().run(r.net, true);
  EXPECT_TRUE(violations.empty()) << violations_text(violations);
}

TEST(BgmpFailure, TransitCrashRestartRepairsTree) {
  // Crashing the transit the tree runs through: its (*,G) state is gone
  // silently; downstream repair re-forms the tree (via either transit) and
  // the checkers find no stale or asymmetric state afterwards.
  RingNet r;
  r.member.host_join(kGroup);
  r.net.settle();
  const bool via_t1 = r.t1.bgmp_router().on_tree(kGroup);
  Domain& used = via_t1 ? r.t1 : r.t2;
  r.net.crash_restart_domain(used);
  r.net.settle();
  r.hops.clear();
  r.root.send(kGroup);
  r.net.settle();
  ASSERT_EQ(r.hops[&r.member].size(), 1u) << "member lost the group";
  const auto violations = check::CheckerSuite::standard().run(r.net, true);
  EXPECT_TRUE(violations.empty()) << violations_text(violations);
}

TEST(BgmpFailure, SourceBranchDropsWithItsPeering) {
  // root--mid--member plus a direct source--member link used by a branch;
  // when that link dies the branch state disappears and delivery falls
  // back to the shared tree.
  Internet net;
  Domain& root = net.add_domain({.id = 1, .name = "root"});
  Domain& mid = net.add_domain({.id = 2, .name = "mid"});
  Domain& member = net.add_domain({.id = 3, .name = "member"});
  Domain& source = net.add_domain({.id = 4, .name = "source"});
  std::map<const Domain*, std::vector<int>> hops;
  net.set_delivery_observer(
      [&](const Delivery& d) { hops[d.domain].push_back(d.hops); });
  net.link(root, mid);
  net.link(mid, member);
  net.link(root, source);
  net.link(source, member);  // shortcut for the branch
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  source.announce_unicast();
  net.settle();
  member.host_join(kGroup);
  net.settle();
  const Ipv4Addr s = source.host_address(1);
  member.build_source_branch(s, kGroup);
  net.settle();
  hops.clear();
  source.send(kGroup);
  net.settle();
  ASSERT_EQ(hops[&member].size(), 1u);
  EXPECT_EQ(hops[&member][0], 1);  // native via the branch

  net.set_link_state(source, member, false);
  net.settle();
  EXPECT_EQ(member.bgmp_router().source_entry(s, kGroup), nullptr);
  hops.clear();
  source.send(kGroup);
  net.settle();
  ASSERT_EQ(hops[&member].size(), 1u);
  EXPECT_EQ(hops[&member][0], 3);  // back on the shared tree via the root
}


TEST(BgmpStability, TreeMigratesWhenBetterPathAppears) {
  // member joins via a 3-hop path; a direct root--member link then comes
  // up. BGP converges on the 1-hop route and the route-change listener
  // migrates the tree parent (make-before-break), shortening delivery.
  Internet net;
  Domain& root = net.add_domain({.id = 1, .name = "root"});
  Domain& t1 = net.add_domain({.id = 2, .name = "t1"});
  Domain& t2 = net.add_domain({.id = 3, .name = "t2"});
  Domain& member = net.add_domain({.id = 4, .name = "member"});
  std::map<const Domain*, std::vector<int>> hops;
  net.set_delivery_observer(
      [&](const Delivery& d) { hops[d.domain].push_back(d.hops); });
  net.link(root, t1);
  net.link(t1, t2);
  net.link(t2, member);
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  net.settle();
  member.host_join(kGroup);
  net.settle();
  hops.clear();
  root.send(kGroup);
  net.settle();
  ASSERT_EQ(hops[&member].size(), 1u);
  EXPECT_EQ(hops[&member][0], 3);

  net.link(root, member);  // the shortcut appears
  net.settle();
  hops.clear();
  root.send(kGroup);
  net.settle();
  ASSERT_EQ(hops[&member].size(), 1u);
  EXPECT_EQ(hops[&member][0], 1);
  // The old path's state was pruned away.
  EXPECT_FALSE(t1.bgmp_router().on_tree(kGroup));
  EXPECT_FALSE(t2.bgmp_router().on_tree(kGroup));
}

TEST(BgmpStability, MigrationDampedNotPerUpdate) {
  // Multiple BGP updates inside one damping window cause at most one
  // re-resolution (the §3 stability requirement: trees "should not be
  // reshaped frequently").
  Internet net;
  Domain& root = net.add_domain({.id = 1, .name = "root"});
  Domain& member = net.add_domain({.id = 2, .name = "member"});
  net.link(root, member);
  root.originate_group_range(Prefix::parse("224.0.128.0/24"));
  net.settle();
  member.host_join(kGroup);
  net.settle();
  const bgmp::GroupEntry* before = member.bgmp_router().star_entry(kGroup);
  ASSERT_NE(before, nullptr);
  const auto parent_before = before->parent;
  // Churn an unrelated covering route repeatedly.
  for (int i = 0; i < 5; ++i) {
    root.originate_group_range(Prefix::parse("224.0.0.0/16"));
    root.withdraw_group_range(Prefix::parse("224.0.0.0/16"));
  }
  net.settle();
  const bgmp::GroupEntry* after = member.bgmp_router().star_entry(kGroup);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->parent, parent_before);  // stable tree
}

// ------------------------------------------------- MASC across partitions

TEST(MascFailure, ClaimsSurvivePartitionsViaHeldDelivery) {
  // MASC peerings use held-message semantics (not session resets): a claim
  // sent into a partition arrives when it heals — within the waiting
  // period nothing is lost. (The protocol-level behavior is covered in
  // masc_test; this pins the channel semantics through the core wiring.)
  Internet net;
  Domain& top = net.add_domain({.id = 1, .name = "top"});
  Domain& child = net.add_domain({.id = 2, .name = "child"});
  net.link(top, child, bgp::Relationship::kCustomer);
  net.masc_parent(child, top);
  top.masc_node().set_spaces({net::multicast_space()});
  top.masc_node().request_space(65536);
  net.settle();
  child.masc_node().request_space(256);
  net.settle();
  EXPECT_EQ(child.masc_node().pool().prefixes().size(), 1u);
  EXPECT_EQ(child.masc_node().collisions_suffered(), 0);
}

}  // namespace
}  // namespace core
