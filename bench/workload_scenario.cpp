// Workload benchmark — the aggregate end-host layer at scale. Builds the
// shared scenario shape, runs the claim phase, leases the workload's
// group population from the MAASes, then drives a simulated week (by
// default) of Zipf/Poisson membership churn with diurnal modulation and
// flash crowds through workload::Session. Reports the realized member
// population (sampled at each simulated day boundary), the BGMP tree
// join/prune economy it induced, join-propagation latency quantiles,
// MAAS address fragmentation and the heaviest per-domain tree-edge loads
// as JSON.
//
// Usage:
//   workload_scenario [--domains N] [--seed S] [--threads T]
//                     [--max-tops M] [--active-children A]
//                     [--groups G] [--days D] [--tick SEC]
//                     [--arrivals RATE] [--lifetime SEC] [--zipf ALPHA]
//                     [--diurnal AMP] [--flash-crowds N]
//                     [--flash-multiplier X] [--flash-duration SEC]
//                     [--span-base N] [--span-alpha ALPHA]
//                     [--packets RATE] [--out FILE]
//
// The run is a pure function of {seed, parameters}: rib_digest and
// engine_digest are byte-identical at any --threads, which is what the
// determinism grid asserts. Defaults follow ScenarioSpec ladder practice:
// above 512 domains the scale caps apply unless overridden.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/internet.hpp"
#include "eval/args.hpp"
#include "eval/scenario.hpp"
#include "obs/metrics.hpp"
#include "workload/session.hpp"

namespace {

void write_report(const eval::ScenarioSpec& spec,
                  const workload::SessionReport& report,
                  const obs::Snapshot& snap, double wall_seconds,
                  std::uint64_t events_run, std::uint64_t rib_digest,
                  std::ostream& os) {
  const workload::Spec& w = spec.workload;
  os << "{\n  \"bench\": \"workload_scenario\",\n"
     << "  \"params\": {\"domains\": " << spec.domains
     << ", \"seed\": " << spec.seed << ", \"threads\": " << spec.threads
     << ", \"max_tops\": " << spec.max_tops
     << ", \"active_children\": " << spec.active_children
     << ", \"workload_groups\": " << w.groups
     << ", \"sim_days\": " << w.sim_days
     << ", \"tick_seconds\": " << w.tick_seconds
     << ", \"arrivals_per_second\": " << w.arrivals_per_second
     << ", \"mean_lifetime_seconds\": " << w.mean_lifetime_seconds
     << ", \"zipf_alpha\": " << w.zipf_alpha
     << ", \"diurnal_amplitude\": " << w.diurnal_amplitude
     << ", \"flash_crowds\": " << w.flash_crowds
     << ", \"flash_multiplier\": " << w.flash_multiplier
     << ", \"flash_duration_seconds\": " << w.flash_duration_seconds
     << ", \"span_base\": " << w.span_base
     << ", \"span_alpha\": " << w.span_alpha
     << ", \"packets_per_second\": " << w.packets_per_second << "},\n"
     << "  \"wall_seconds\": " << wall_seconds << ",\n"
     << "  \"events_run\": " << events_run << ",\n"
     << "  \"events_per_second\": "
     << (wall_seconds > 0.0 ? static_cast<double>(events_run) / wall_seconds
                            : 0.0)
     << ",\n"
     << "  \"members_total\": " << report.members_total << ",\n"
     << "  \"members_peak\": " << report.members_peak << ",\n"
     << "  \"joins_total\": " << report.joins_total << ",\n"
     << "  \"leaves_total\": " << report.leaves_total << ",\n"
     << "  \"tree_joins\": " << report.tree_joins << ",\n"
     << "  \"tree_prunes\": " << report.tree_prunes << ",\n"
     << "  \"active_cells\": " << report.active_cells << ",\n"
     << "  \"active_groups\": " << report.active_groups << ",\n"
     << "  \"groups_leased\": " << report.groups_leased << ",\n"
     << "  \"lease_failures\": " << report.lease_failures << ",\n"
     << "  \"flash_crowds_drawn\": " << report.flash_crowds << ",\n"
     << "  \"ticks_run\": " << report.ticks_run << ",\n"
     << "  \"edge_load_total\": " << report.edge_load_total << ",\n"
     << "  \"address_fragmentation\": "
     << snap.gauge_value("workload.address_fragmentation") << ",\n";

  const obs::HistogramStats lat =
      snap.histogram_stats("bgmp.join_propagation_latency");
  os << "  \"join_latency_seconds\": {\"count\": " << lat.count
     << ", \"p50\": " << lat.p50 << ", \"p95\": " << lat.p95
     << ", \"p99\": " << lat.p99 << ", \"max\": " << lat.max << "},\n";

  // The heaviest tree edges: the sharded counter's bounded top view,
  // keyed by member-domain id (packet-hops accumulated over the run).
  os << "  \"edge_load_top\": [";
  if (const obs::ShardedSample* edges =
          snap.find_sharded("bgmp.tree_edge_load.by_domain")) {
    for (std::size_t i = 0; i < edges->items.size(); ++i) {
      const obs::ShardedItem& item = edges->items[i];
      os << (i == 0 ? "" : ", ") << "{\"domain\": " << item.key
         << ", \"packet_hops\": " << static_cast<std::uint64_t>(item.value)
         << "}";
    }
  }
  os << "],\n";

  os << "  \"members_by_day\": [";
  for (std::size_t i = 0; i < report.members_by_day.size(); ++i) {
    os << (i == 0 ? "" : ", ") << report.members_by_day[i];
  }
  os << "],\n"
     << "  \"engine_digest\": " << report.engine_digest << ",\n"
     << "  \"rib_digest\": " << rib_digest << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  eval::ScenarioSpec spec;
  spec.domains = 1024;
  spec.max_tops = -1;          // -1 = follow the ladder caps
  spec.active_children = -1;
  spec.workload.enabled = true;
  workload::Spec& w = spec.workload;
  std::string out_path;

  eval::Args args("workload_scenario",
                  "aggregate end-host churn (Zipf groups, Poisson "
                  "join/leave, diurnal + flash crowds) over the full "
                  "MASC/MAAS/BGP/BGMP pipeline");
  args.opt("--domains", &spec.domains, "domain count");
  args.opt("--seed", &spec.seed, "workload seed");
  args.opt("--threads", &spec.threads,
           "execution width (byte-identical schedule at any value)");
  args.opt("--max-tops", &spec.max_tops,
           "cap the backbone size (-1 = ladder caps, 0 = domains/8)");
  args.opt("--active-children", &spec.active_children,
           "cap how many children lease groups (-1 = ladder caps, 0 = all)");
  args.opt("--groups", &w.groups, "multicast groups to lease");
  args.opt("--days", &w.sim_days, "simulated horizon in days");
  args.opt("--tick", &w.tick_seconds, "churn tick in simulated seconds");
  args.opt("--arrivals", &w.arrivals_per_second,
           "aggregate member arrivals per second (diurnal mean)");
  args.opt("--lifetime", &w.mean_lifetime_seconds,
           "mean membership lifetime in seconds");
  args.opt("--zipf", &w.zipf_alpha, "group popularity exponent");
  args.opt("--diurnal", &w.diurnal_amplitude,
           "diurnal arrival-rate modulation amplitude");
  args.opt("--flash-crowds", &w.flash_crowds,
           "flash-crowd bursts drawn over the horizon");
  args.opt("--flash-multiplier", &w.flash_multiplier,
           "arrival-rate multiplier during a flash crowd");
  args.opt("--flash-duration", &w.flash_duration_seconds,
           "flash-crowd duration in seconds");
  args.opt("--span-base", &w.span_base,
           "domain-affinity span of the top-ranked group");
  args.opt("--span-alpha", &w.span_alpha, "span decay exponent");
  args.opt("--packets", &w.packets_per_second,
           "per-group source data rate (packets/second)");
  args.opt("--out", &out_path, "also write the JSON report here");
  if (!args.parse(argc, argv)) return args.exit_code();

  // The ladder caps (macro_scenario's rung_spec) unless overridden: a 10k
  // run with an uncapped backbone would square the MASC sibling mesh.
  if (spec.max_tops < 0) {
    spec.max_tops = spec.domains > 512 ? 64 : 0;
  }
  if (spec.active_children < 0) {
    spec.active_children = spec.domains > 512 ? 256 : 0;
  }
  if (spec.domains > 512 && spec.flap_pairs == 0) spec.flap_pairs = 2;

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  core::Internet net(spec.seed);
  net.set_threads(spec.threads);
  const eval::BuiltScenario topo = eval::build_scenario(net, spec);
  eval::phase_claim(net, topo);
  std::unique_ptr<workload::Session> session =
      eval::phase_workload(net, spec, topo);
  if (!session) {
    std::cerr << "workload_scenario: no group could be leased (domains="
              << spec.domains << ")\n";
    return 2;
  }
  std::cerr << "workload_scenario: " << spec.domains << " domains, "
            << session->report().groups_leased << " groups leased, "
            << spec.workload.ticks() << " ticks of " << w.tick_seconds
            << "s over " << w.sim_days << " simulated days\n";
  session->run();

  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  const obs::Snapshot snap = net.metrics_snapshot();
  const std::uint64_t digest = eval::rib_digest(net);
  const workload::SessionReport report = session->report();

  write_report(spec, report, snap, wall_seconds, net.events().events_run(),
               digest, std::cout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "workload_scenario: cannot write " << out_path << "\n";
      return 2;
    }
    write_report(spec, report, snap, wall_seconds, net.events().events_run(),
                 digest, out);
  }
  return 0;
}
