// Ablation A2: the claim–collide mechanism under contention and across
// network partitions (§4.1, §4.3.4).
//
// Part 1 — contention: n top-level domains claim simultaneously from the
// same space with the paper's random-block strategy vs deterministic
// first-fit. Reports total collisions and the worst claim latency in
// waiting periods ("in the worst case, the nth domain might have to make
// up to n claims"; random choice "provides a lower chance of a collision
// than if claims were deterministic").
//
// Part 2 — partitions: two siblings claim the same range while their
// channel is down; the partition heals after a configurable fraction of
// the 48-hour waiting period. Within the waiting period the collision is
// caught before commitment; beyond it, both commit and the late collision
// resolution must revoke one side's range (the reason the waiting period
// must "span network partitions").
//
// Usage: ablation_collide [--sizes 2,5,10,25,50] [--heal-at 0.1,0.5,0.9]
//                         [--late-heal 1.5] [--events N]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "eval/args.hpp"
#include "masc/node.hpp"
#include "net/event.hpp"
#include "net/network.hpp"

namespace {

struct Fleet {
  net::EventQueue events;
  net::Network network{events};
  std::vector<std::unique_ptr<masc::MascNode>> nodes;
  int granted = 0;
  int failed = 0;
  net::SimTime last_grant;

  explicit Fleet(int n, masc::ClaimStrategy strategy) {
    masc::MascNode::Params params;
    params.pool.strategy = strategy;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<masc::MascNode>(
          network, static_cast<masc::DomainId>(i + 1),
          "top" + std::to_string(i + 1), params, 7'000 + i));
      nodes.back()->set_callbacks(masc::MascNode::Callbacks{
          [this](const net::Prefix&, net::SimTime) {
            ++granted;
            last_grant = events.now();
          },
          nullptr,
          [this](std::uint64_t) { ++failed; },
      });
      nodes.back()->set_spaces({net::multicast_space()});
    }
    // Full sibling mesh, as among top-level domains at the exchanges.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        masc::MascNode::connect(*nodes[i], *nodes[j],
                                masc::MascNode::PeerKind::kSibling);
      }
    }
  }

  int total_collisions() const {
    int total = 0;
    for (const auto& node : nodes) total += node->collisions_suffered();
    return total;
  }
};

void contention(int n, masc::ClaimStrategy strategy,
                std::uint64_t event_budget) {
  Fleet fleet(n, strategy);
  for (auto& node : fleet.nodes) node->request_space(65536);
  fleet.events.run(event_budget);
  const double waits = fleet.last_grant.to_hours() / 48.0;
  std::printf("  %-14s n=%3d  collisions=%4d  granted=%3d  failed=%d  "
              "latency=%.0f waiting period(s)\n",
              to_string(strategy), n, fleet.total_collisions(),
              fleet.granted, fleet.failed, waits);
}

void partition(double heal_fraction, std::uint64_t event_budget) {
  Fleet fleet(2, masc::ClaimStrategy::kFirstFit);
  fleet.network.set_up(net::ChannelId{0}, false);
  fleet.nodes[0]->request_space(65536);
  fleet.events.run_until(net::SimTime::minutes(1));
  fleet.nodes[1]->request_space(65536);  // same range, unseen
  const auto heal = net::SimTime::seconds_f(48.0 * 3600.0 * heal_fraction);
  fleet.events.run_until(heal);
  fleet.network.set_up(net::ChannelId{0}, true);
  fleet.events.run(event_budget);
  // Count live, non-overlapping committed ranges.
  const auto& a = fleet.nodes[0]->pool().prefixes();
  const auto& b = fleet.nodes[1]->pool().prefixes();
  const bool overlap = !a.empty() && !b.empty() &&
                       a[0].prefix.overlaps(b[0].prefix);
  std::printf("  heal at %3.0f%% of waiting period: collisions=%d, "
              "ranges disjoint=%s (A holds %zu, B holds %zu)\n",
              heal_fraction * 100.0, fleet.total_collisions(),
              overlap ? "NO" : "yes", a.size(), b.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {2, 5, 10, 25, 50};
  std::vector<std::string> heal_at_text = {"0.1", "0.5", "0.9"};
  double late_heal = 1.5;
  std::uint64_t event_budget = 10'000'000;
  eval::Args args("ablation_collide",
                  "Ablation A2: claim–collide under contention and across "
                  "partitions");
  args.opt("--sizes", &sizes, "contention fleet sizes (csv)");
  args.opt("--heal-at", &heal_at_text,
           "partition heal points as fractions of the waiting period (csv)");
  args.opt("--late-heal", &late_heal,
           "heal fraction past the waiting period (both sides committed)");
  args.opt("--events", &event_budget, "event budget per run");
  if (!args.parse(argc, argv)) return args.exit_code();

  std::vector<double> heal_at;
  for (const std::string& f : heal_at_text) {
    heal_at.push_back(std::strtod(f.c_str(), nullptr));
  }

  std::printf("== Ablation A2: claim–collide under contention ==\n");
  std::printf("(simultaneous claims from the same space; the paper: random\n"
              " choice lowers collision odds vs deterministic claims)\n");
  for (const int n : sizes) {
    contention(n, masc::ClaimStrategy::kFirstFit, event_budget);
  }
  std::printf("\n");
  for (const int n : sizes) {
    contention(n, masc::ClaimStrategy::kRandomBlockFirstSub, event_budget);
  }

  std::printf("\n== Ablation A2: partitions vs the 48h waiting period ==\n");
  for (const double f : heal_at) partition(f, event_budget);
  std::printf("  (healing within the waiting period: the loser retries\n"
              "   before committing — no revoked allocations)\n");
  partition(late_heal, event_budget);
  std::printf("  (healing after both committed: the later claim is revoked\n"
              "   on heal — the disruption the 48h window exists to avoid)\n");
  return 0;
}
