// Offline critical-path analysis of a spans JSONL artifact.
//
// Any harness that ran with span sampling (macro_scenario --telemetry,
// chaos_scenario --telemetry, sweep_scenario --telemetry-dir) leaves a
// `.spans.jsonl` file: probe arm/fire markers plus the head-sampled
// causal chains. This tool reconstructs each convergence measurement's
// critical path from that file alone — the longest chain of
// send/hold/deliver hops behind every `core.convergence_latency`
// observation, broken down by protocol phase (bgp / bgmp / masc / wait)
// with its single slowest hop called out.
//
// The report is a pure function of the input bytes: the same spans file
// produces a byte-identical report no matter the host, thread count or
// how many times it is run — determinism the telemetry tests gate on.
//
// Usage:
//   analyze_run SPANS.jsonl [--json] [--out FILE]
//
// Default output is the human-readable long-pole summary; --json emits
// the machine-readable report instead.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "eval/args.hpp"
#include "eval/critical_path.hpp"

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  std::string in_path;

  eval::Args args("analyze_run",
                  "critical-path analysis of a sampled spans JSONL file");
  args.opt("--spans", &in_path, "spans JSONL file (or first positional arg)");
  args.flag("--json", &json, "emit the machine-readable JSON report");
  args.opt("--out", &out_path, "also write the report here");

  // Accept the spans file as a bare positional argument: pull it out of
  // argv so the shared parser (flags-only) still validates the rest.
  // "--spans" and "--out" consume the following token as their value.
  std::vector<char*> argv2;
  argv2.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prev = i > 0 ? argv[i - 1] : "";
    const bool is_flag_value = prev == "--spans" || prev == "--out";
    if (i > 0 && !arg.empty() && arg[0] != '-' && !is_flag_value) {
      in_path = arg;
      continue;
    }
    argv2.push_back(argv[i]);
  }
  if (!args.parse(static_cast<int>(argv2.size()), argv2.data())) {
    return args.exit_code();
  }
  if (in_path.empty()) {
    std::cerr << "analyze_run: no spans file given (positional or --spans)\n";
    return 2;
  }

  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "analyze_run: cannot read " << in_path << "\n";
    return 2;
  }
  const std::vector<obs::SpanEvent> events = eval::read_spans_jsonl(in);
  const eval::CriticalPathReport report = eval::analyze_spans(events);

  if (json) {
    report.write_json(std::cout);
  } else {
    report.write_text(std::cout);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "analyze_run: cannot write " << out_path << "\n";
      return 2;
    }
    if (json) {
      report.write_json(out);
    } else {
      report.write_text(out);
    }
  }
  return 0;
}
