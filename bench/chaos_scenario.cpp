// Chaos CLI: seeded failure schedules against the full architecture with
// the invariant checkers (src/check) sweeping throughout. One run per
// seed; each emits a JSON record whose {seed, step, schedule} triple
// replays any violation exactly (src/eval/chaos.hpp).
//
// Usage:
//   chaos_scenario [--seeds N | --seed S] [--domains D] [--steps T]
//                  [--check-every K] [--loss P] [--reorder P]
//                  [--groups G] [--joins J] [--threads N] [--out FILE]
//                  [--check] [--workload]
//                  [--inject-skip-waiting] [--expect-violations]
//                  [--telemetry] [--telemetry-interval SEC]
//                  [--span-sample RATE]
//
// --telemetry attaches the obs flight recorder (1 sim-second frames) and
// head-sampled spans to every seed; a failing seed then also dumps
// chaos-telemetry-seed<S>.{recorder.jsonl,spans.jsonl,critical_path.json}
// next to its violation JSON — the time-series and causal-chain evidence
// CI uploads with a red run.
//
// --workload runs the aggregate end-host layer (src/workload) through
// the schedule: Zipf/Poisson membership churn ticks every 30 simulated
// seconds while the perturbations land, so tree joins and prunes race
// flaps, partitions and crash-restarts. The invariant sweeps see the
// combined state.
//
// --check exits 1 unless every seed passes (zero violations + final
// quiescence). --inject-skip-waiting collapses the MASC waiting period to
// ~zero (and forces --check-every 1): the deliberate §4.1 bug the overlap
// checker must catch. --expect-violations inverts the gate — exit 0 only
// if every seed reports at least one violation (the CI detection
// self-test). On any violation the run's JSON is also written to
// chaos-violation-seed<S>.json for artifact upload.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "eval/args.hpp"
#include "eval/chaos.hpp"

int main(int argc, char** argv) {
  eval::ChaosConfig base;
  std::uint64_t first_seed = 1;
  int seed_count = 1;
  bool gate = false;
  bool expect_violations = false;
  bool inject_skip_waiting = false;
  bool telemetry = false;
  bool with_workload = false;
  double telemetry_interval = 1.0;
  double span_sample = 0.01;
  std::string out_path;

  eval::Args args("chaos_scenario",
                  "seeded failure schedules with invariant sweeps");
  args.opt("--seeds", &seed_count, "number of consecutive seeds to run");
  args.opt("--seed", &first_seed, "first seed");
  args.opt("--domains", &base.domains, "topology size");
  args.opt("--steps", &base.steps, "perturbation steps per seed");
  args.opt("--check-every", &base.check_every,
           "sweep the checkers every K steps");
  args.opt("--loss", &base.loss_rate, "base transport loss rate");
  args.opt("--reorder", &base.reorder_rate, "base transport reorder rate");
  args.opt("--groups", &base.groups, "groups to lease (0 = domains/4)");
  args.opt("--joins", &base.joins, "initial member joins per group");
  args.opt("--threads", &base.threads,
           "execution width per seed (byte-identical schedule at any value)");
  args.opt("--out", &out_path, "write the JSON records here");
  args.flag("--check", &gate, "exit 1 unless every seed passes");
  args.flag("--workload", &with_workload,
            "run aggregate membership churn (Zipf/Poisson end-host layer) "
            "through the schedule");
  args.flag("--inject-skip-waiting", &inject_skip_waiting,
            "collapse the MASC waiting period (checker self-test bug)");
  args.flag("--expect-violations", &expect_violations,
            "invert the gate: require a violation on every seed");
  args.flag("--telemetry", &telemetry,
            "attach the flight recorder + span sampling; failing seeds "
            "dump their telemetry artifacts");
  args.opt("--telemetry-interval", &telemetry_interval,
           "recorder frame interval in simulated seconds");
  args.opt("--span-sample", &span_sample, "head-based span sampling rate");
  if (!args.parse(argc, argv)) return args.exit_code();
  if (telemetry) {
    base.telemetry.recorder_interval_seconds = telemetry_interval;
    base.telemetry.span_sample_rate = span_sample;
  }
  if (inject_skip_waiting) {
    base.inject_skip_waiting_period = true;
    base.check_every = 1;  // the overlap window is narrow; sweep every step
  }
  if (with_workload) {
    // A chaos-scale spec: one churn tick per schedule step (the step gap
    // is 30 simulated seconds), a horizon comfortably past the schedule
    // so ticks never run dry, and fast lifetimes so cells cross zero —
    // tree prunes race the perturbations, not just joins.
    workload::Spec w = workload::Spec::small();
    w.tick_seconds = base.step_gap.to_seconds();
    w.sim_days =
        2.0 * base.steps * base.step_gap.to_seconds() / 86400.0 + 1.0 / 96.0;
    w.groups = 16;
    w.arrivals_per_second = 20.0;
    w.mean_lifetime_seconds = 300.0;
    w.span_base = 8;
    w.flash_crowds = 2;
    w.flash_duration_seconds = 120.0;
    base.workload = w;
  }
  if (seed_count < 1) {
    std::cerr << "chaos_scenario: --seeds must be >= 1\n";
    return 2;
  }

  std::ofstream out;
  if (!out_path.empty()) {
    out.open(out_path);
    if (!out) {
      std::cerr << "chaos_scenario: cannot write " << out_path << "\n";
      return 2;
    }
    out << "[\n";
  }

  int failed = 0;
  int violated = 0;
  double wall = 0.0;
  for (int s = 0; s < seed_count; ++s) {
    eval::ChaosConfig config = base;
    config.seed = first_seed + static_cast<std::uint64_t>(s);
    if (telemetry) {
      config.telemetry_prefix =
          "chaos-telemetry-seed" + std::to_string(config.seed);
    }
    eval::ChaosResult result;
    try {
      result = eval::run_chaos(config);
    } catch (const std::exception& e) {
      std::cerr << "chaos_scenario: seed " << config.seed
                << " threw: " << e.what() << "\n";
      ++failed;
      continue;
    }
    wall += result.wall_seconds;
    if (out.is_open()) {
      if (s > 0) out << ",\n";
      result.write_json(out);
    }
    if (!result.violations.empty()) {
      ++violated;
      std::cerr << "chaos_scenario: seed " << config.seed << " violated "
                << result.violations.size() << " invariant(s):\n";
      for (const eval::ChaosViolation& v : result.violations) {
        std::cerr << "  step " << v.step << " [" << v.invariant << "] "
                  << v.subject << ": " << v.detail << "\n";
      }
      std::cerr << "  replay: chaos_scenario --seed " << config.seed
                << " --domains " << config.domains << " --steps "
                << config.steps << " --check-every " << config.check_every
                << (config.inject_skip_waiting_period
                        ? " --inject-skip-waiting"
                        : "")
                << "\n";
      const std::string dump =
          "chaos-violation-seed" + std::to_string(config.seed) + ".json";
      std::ofstream dump_out(dump);
      if (dump_out) {
        result.write_json(dump_out);
        std::cerr << "  wrote " << dump << "\n";
      }
    } else if (!result.quiesced) {
      ++failed;
      std::cerr << "chaos_scenario: seed " << config.seed
                << " did not quiesce after the final heal\n";
    }
    if (!expect_violations && result.violations.empty() &&
        result.quiesced) {
      std::cerr << "chaos_scenario: seed " << config.seed << " ok ("
                << result.schedule.size() << " steps, "
                << result.checks_run << " sweeps, " << result.events_run
                << " events)\n";
    }
  }
  if (out.is_open()) out << "]\n";

  std::cerr << "chaos_scenario: " << seed_count << " seed(s), " << violated
            << " with violations, " << failed << " failed, " << wall
            << "s\n";
  if (expect_violations) {
    // Detection self-test: the injected bug must be caught on EVERY seed.
    return violated == seed_count && failed == 0 ? 0 : 1;
  }
  if (gate) return violated == 0 && failed == 0 ? 0 : 1;
  return 0;
}
