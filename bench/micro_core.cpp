// M1: google-benchmark micro-benchmarks for the library's hot paths —
// the data structures every protocol operation rests on.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bgp/path_table.hpp"
#include "bgp/rib.hpp"
#include "bgp/speaker.hpp"
#include "eval/args.hpp"
#include "eval/tree_model.hpp"
#include "masc/claim_algorithm.hpp"
#include "masc/registry.hpp"
#include "net/event.hpp"
#include "net/message_pool.hpp"
#include "net/network.hpp"
#include "net/parallel.hpp"
#include "net/prefix_trie.hpp"
#include "net/rng.hpp"
#include "obs/metrics.hpp"
#include "topology/generators.hpp"
#include "workload/engine.hpp"

namespace {

using net::Ipv4Addr;
using net::Prefix;

std::vector<Prefix> random_prefixes(std::size_t n, std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<Prefix> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int len = static_cast<int>(rng.uniform_int(8, 24));
    out.push_back(Prefix::containing(
        Ipv4Addr{static_cast<std::uint32_t>(
            0xE0000000u | rng.uniform_int(0, 0x0FFFFFFF))},
        len));
  }
  return out;
}

// ----------------------------------------------------------- prefix trie

void BM_TrieInsert(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    net::PrefixTrie<int> trie;
    for (const Prefix& p : prefixes) trie.insert(p, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieInsert)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TrieLongestMatch(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 2);
  net::PrefixTrie<int> trie;
  for (const Prefix& p : prefixes) trie.insert(p, 1);
  net::Rng rng(3);
  std::vector<Ipv4Addr> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(Ipv4Addr{static_cast<std::uint32_t>(
        0xE0000000u | rng.uniform_int(0, 0x0FFFFFFF))});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1000)->Arg(10000);

// ------------------------------------------------------------ event queue

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    net::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      queue.schedule_at(net::SimTime::milliseconds((i * 37) % 1000 + 1),
                        [&fired] { ++fired; });
    }
    queue.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// 1M pending is the regime the ladder queue exists for: the old binary
// heap degraded 3.6x from 1k to 100k pending; amortized-O(1) pops must
// hold the per-item rate roughly flat all the way up.
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000)->Arg(1000000);

// The horizon mix of a real run: a dense near-future band (message
// deliveries at ~10ms) under a sparse far-future tail (MASC waiting
// periods, up to 48 simulated hours) — the schedule pattern that forces
// the ladder to keep rungs and the overflow tier live while the bottom
// churns, instead of the single-band pattern above.
void BM_EventQueueSkewedHorizon(benchmark::State& state) {
  for (auto _ : state) {
    net::EventQueue queue;
    int fired = 0;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      if (i % 8 == 0) {
        // Far tail: spread over hours, like staggered waiting periods.
        queue.schedule_at(net::SimTime::seconds((i * 131) % 172800 + 60),
                          [&fired] { ++fired; });
      } else {
        queue.schedule_at(net::SimTime::milliseconds((i * 37) % 1000 + 1),
                          [&fired] { ++fired; });
      }
    }
    // Drain the near band while rescheduling into it — the steady-state
    // delivery churn — then run the far tail out.
    queue.run_until(net::SimTime::seconds(1));
    for (int i = 0; i < n / 4; ++i) {
      queue.schedule_in(net::SimTime::milliseconds((i * 37) % 1000 + 1),
                        [&fired] { ++fired; });
    }
    queue.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() *
                          (state.range(0) + state.range(0) / 4));
}
BENCHMARK(BM_EventQueueSkewedHorizon)->Arg(100000)->Arg(1000000);

// ------------------------------------------------------------ BGP decision

void BM_RibDecision(benchmark::State& state) {
  // Candidate churn on one prefix with `n` peers.
  const int peers = static_cast<int>(state.range(0));
  net::Rng rng(4);
  std::vector<bgp::Candidate> candidates;
  for (int i = 0; i < peers; ++i) {
    bgp::Candidate c;
    c.route.prefix = Prefix::parse("224.0.0.0/16");
    c.route.as_path = bgp::PathRef::intern(std::vector<bgp::DomainId>(
        static_cast<std::size_t>(rng.uniform_int(1, 6)), 1));
    c.route.local_pref = static_cast<int>(rng.uniform_int(80, 100));
    c.via = static_cast<bgp::PeerIndex>(i);
    c.exit_uid = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    candidates.push_back(c);
  }
  for (auto _ : state) {
    bgp::RibEntry entry;
    for (const auto& c : candidates) entry.upsert(c);
    benchmark::DoNotOptimize(entry.best());
  }
  state.SetItemsProcessed(state.iterations() * peers);
}
BENCHMARK(BM_RibDecision)->Arg(4)->Arg(32);

// ------------------------------------------------------------- MASC claim

void BM_ClaimChoice(benchmark::State& state) {
  // Choose a claim among `n` live sibling claims in 224/4.
  masc::ClaimRegistry registry;
  net::Rng rng(5);
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 6);
  const net::SimTime now = net::SimTime::days(1);
  const net::SimTime later = net::SimTime::days(31);
  masc::DomainId owner = 1;
  for (const Prefix& p : prefixes) {
    (void)registry.claim(p, owner++, later, now);
  }
  const std::vector<Prefix> spaces{net::multicast_space()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        masc::choose_claim(spaces, registry, 24, now, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClaimChoice)->Arg(50)->Arg(500);

// ----------------------------------------------------- Figure-4 tree model

void BM_TreeModel(benchmark::State& state) {
  net::Rng rng(7);
  const topology::Graph graph = topology::make_as_level(3326, 2, rng);
  eval::GroupScenario scenario;
  scenario.root = 10;
  scenario.source = 20;
  for (int i = 0; i < state.range(0); ++i) {
    scenario.receivers.push_back(
        static_cast<topology::NodeId>(rng.index(graph.node_count())));
  }
  for (auto _ : state) {
    const eval::TreeModel model(graph, scenario);
    benchmark::DoNotOptimize(
        model.path_lengths(eval::TreeType::kHybrid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeModel)->Arg(100)->Arg(1000);

// ------------------------------------------------------ message allocation

// The strict allocate→deliver→free cycle every protocol message lives
// through, with and without free-list recycling. The payload mirrors a
// typical BGP update message size.
void BM_MessageAllocation(benchmark::State& state) {
  struct FakeUpdate : net::Message {
    std::uint64_t payload[12] = {};
    [[nodiscard]] std::string describe() const override { return "bench"; }
  };
  const bool use_pool = state.range(0) != 0;
  const bool was_enabled = net::MessagePool::set_enabled(use_pool);
  net::MessagePool::trim();
  net::MessagePool::reset_stats();
  for (auto _ : state) {
    auto msg = std::make_unique<FakeUpdate>();
    benchmark::DoNotOptimize(msg.get());
    msg.reset();
  }
  const auto stats = net::MessagePool::stats();
  state.counters["hit_rate"] = stats.hit_rate();
  state.SetItemsProcessed(state.iterations());
  net::MessagePool::trim();
  (void)net::MessagePool::set_enabled(was_enabled);
}
BENCHMARK(BM_MessageAllocation)
    ->Arg(0)  // malloc/free every message
    ->Arg(1)  // thread-local free-list recycling
    ->ArgNames({"pool"});

// ---------------------------------------------------------- path interning

// Route copies are the dominant consumer of AS paths: with interning a
// copy is a refcount bump, without it each copy clones a vector. The
// interleave of intern() calls models a speaker re-learning the same few
// paths over and over (the hit-rate counter shows the consing working).
void BM_PathIntern(benchmark::State& state) {
  const int distinct = static_cast<int>(state.range(0));
  std::vector<std::vector<bgp::DomainId>> paths;
  for (int i = 0; i < distinct; ++i) {
    std::vector<bgp::DomainId> hops;
    for (int h = 0; h <= i % 6; ++h) {
      hops.push_back(static_cast<bgp::DomainId>(900000 + i + h));
    }
    paths.push_back(std::move(hops));
  }
  // Keep one ref per path alive, as RIBs do — otherwise each iteration's
  // release would free the entry and every intern would miss.
  std::vector<bgp::PathRef> keep;
  for (const auto& hops : paths) keep.push_back(bgp::PathRef::intern(hops));
  bgp::PathTable::instance().reset_stats();
  std::size_t i = 0;
  for (auto _ : state) {
    const bgp::PathRef ref = bgp::PathRef::intern(paths[i++ % paths.size()]);
    benchmark::DoNotOptimize(ref.id());
  }
  state.counters["hit_rate"] =
      bgp::PathTable::instance().stats().hit_rate();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathIntern)->Arg(16)->Arg(256)->ArgNames({"distinct"});

void BM_RouteCopy(benchmark::State& state) {
  // Copying a Route with a 5-hop path: the operation Adj-RIB-Out fills,
  // update deltas and decision results all reduce to.
  bgp::Route route;
  route.prefix = Prefix::parse("224.0.0.0/16");
  route.as_path = bgp::PathRef::intern({1, 2, 3, 4, 5});
  route.origin_as = 5;
  for (auto _ : state) {
    bgp::Route copy = route;
    benchmark::DoNotOptimize(copy.as_path.id());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteCopy);

// ----------------------------------------------- BGP propagation end-to-end

// -------------------------------------------------------- obs snapshots

/// Snapshot lookups on a registry the size a 10k-domain run actually
/// produces (200+ instruments): recorder ticks and the macro harness call
/// find() per series per frame, so it must be the binary search it claims
/// to be, not a linear scan.
void BM_SnapshotFind(benchmark::State& state) {
  obs::Metrics metrics;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    names.push_back("bench.metric." + std::to_string(i * 7919 % n));
    metrics.counter(names.back()).inc();
  }
  metrics.histogram("bench.latency").observe(0.5);
  const obs::Snapshot snap = metrics.snapshot(0.0);
  std::size_t cursor = 0;
  for (auto _ : state) {
    const obs::Sample* s = snap.find(names[cursor]);
    benchmark::DoNotOptimize(s);
    cursor = (cursor + 1) % names.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotFind)->Arg(200)->Arg(1000);

void BM_ShardedCounterAdd(benchmark::State& state) {
  // The per-delivery attribution cost: mostly sketch hits at a realistic
  // skew, with evictions when the key space exceeds the slot budget.
  obs::ShardedCounter counter(64, 16);
  net::Rng rng(7);
  std::vector<std::uint64_t> keys;
  keys.reserve(4096);
  for (std::size_t i = 0; i < 4096; ++i) {
    keys.push_back(rng.uniform_int(0, state.range(0) - 1));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    counter.add(keys[cursor]);
    cursor = (cursor + 1) & 4095;
  }
  benchmark::DoNotOptimize(counter.total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedCounterAdd)->Arg(32)->Arg(10000)->ArgNames({"domains"});

void BM_BgpPropagation(benchmark::State& state) {
  // One group route propagating over a 200-domain line of speakers.
  for (auto _ : state) {
    state.PauseTiming();
    net::EventQueue events;
    net::Network network(events);
    std::vector<std::unique_ptr<bgp::Speaker>> speakers;
    for (int i = 0; i < 200; ++i) {
      speakers.push_back(std::make_unique<bgp::Speaker>(
          network, static_cast<bgp::DomainId>(i + 1),
          "s" + std::to_string(i)));
    }
    for (int i = 0; i + 1 < 200; ++i) {
      bgp::Speaker::connect(*speakers[i], *speakers[i + 1],
                            bgp::Relationship::kLateral);
    }
    state.ResumeTiming();
    speakers[0]->originate(bgp::RouteType::kGroup,
                           Prefix::parse("224.1.0.0/16"));
    events.run();
    benchmark::DoNotOptimize(
        speakers[199]->rib(bgp::RouteType::kGroup).size());
  }
}
BENCHMARK(BM_BgpPropagation)->Unit(benchmark::kMillisecond);

// -------------------------------------------------- parallel executor

/// One quantum cycle of the parallel executor: pop the timestamp's keys,
/// census, fan out to the worker pool, barrier, replay. Events are
/// leaves (no parked side effects), so this isolates the window-advance
/// machinery itself — the overhead every parallel quantum pays before any
/// useful work parallelises. Arg = events per quantum across 4 shards.
void BM_ShardWindowAdvance(benchmark::State& state) {
  const int per_quantum = static_cast<int>(state.range(0));
  constexpr std::uint32_t kDomains = 64;
  constexpr std::uint32_t kShards = 4;
  for (auto _ : state) {
    state.PauseTiming();
    net::EventQueue queue;
    obs::Metrics metrics;
    net::ParallelExecutor executor(queue, metrics);
    std::vector<std::uint32_t> shard_of(kDomains + 1,
                                        net::ParallelExecutor::kUnassignedShard);
    for (std::uint32_t d = 1; d <= kDomains; ++d) shard_of[d] = (d - 1) % kShards;
    executor.configure(4, std::move(shard_of), kShards,
                       net::SimTime::milliseconds(1).ns(), /*cut_edges=*/16);
    std::uint64_t fired = 0;
    // 64 quanta, each a same-timestamp burst spread over every shard.
    for (int q = 0; q < 64; ++q) {
      for (int i = 0; i < per_quantum; ++i) {
        queue.schedule_at(net::SimTime::milliseconds(q + 1),
                          [&fired] { ++fired; }, "bench.window",
                          static_cast<std::uint32_t>(i % kDomains) + 1);
      }
    }
    state.ResumeTiming();
    executor.run();
    benchmark::DoNotOptimize(fired);
    state.PauseTiming();
    // Tear the pool down outside the timed region.
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ShardWindowAdvance)->Arg(8)->Arg(64)->ArgNames({"events"});

/// The cross-shard message path: an event in shard 0 sends to a domain in
/// shard 1, so the Network::send parks in the worker and commits at
/// replay (trace stamp, seq reservation, FIFO arm all on the
/// coordinator). Measures the full park → barrier → commit → delivery
/// round trip against the same-shard baseline of ordinary delivery.
void BM_CrossShardHandoff(benchmark::State& state) {
  struct BenchEndpoint final : net::Endpoint {
    explicit BenchEndpoint(std::uint64_t id) : id_(id) {}
    void on_message(net::ChannelId, std::unique_ptr<net::Message>) override {
      ++delivered;
    }
    [[nodiscard]] std::string name() const override {
      return "d" + std::to_string(id_);
    }
    [[nodiscard]] std::uint64_t owner_id() const override { return id_; }
    std::uint64_t id_;
    std::uint64_t delivered = 0;
  };
  struct BenchMessage final : net::Message {
    [[nodiscard]] std::string describe() const override { return "x"; }
  };
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::EventQueue queue;
    obs::Metrics metrics;
    net::Network network(queue, &metrics);
    net::ParallelExecutor executor(queue, metrics);
    BenchEndpoint a(1), b(2);
    const net::ChannelId ch =
        network.connect(a, b, net::SimTime::milliseconds(1));
    // Two singleton shards; the channel between them is the (only) cut,
    // so the window equals its latency.
    executor.configure(2, {net::ParallelExecutor::kUnassignedShard, 0u, 1u},
                       2, net::SimTime::milliseconds(1).ns(),
                       /*cut_edges=*/1);
    // Each quantum holds one sender event per side, so it parallelises
    // and every send crosses the cut.
    for (int q = 0; q < 64; ++q) {
      for (int i = 0; i < pairs; ++i) {
        queue.schedule_at(
            net::SimTime::milliseconds(q * 2 + 1),
            [&] { network.send(ch, a, std::make_unique<BenchMessage>()); },
            "bench.handoff", 1);
        queue.schedule_at(
            net::SimTime::milliseconds(q * 2 + 1),
            [&] { network.send(ch, b, std::make_unique<BenchMessage>()); },
            "bench.handoff", 2);
      }
    }
    state.ResumeTiming();
    executor.run();
    benchmark::DoNotOptimize(a.delivered + b.delivered);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 2 * state.range(0));
}
BENCHMARK(BM_CrossShardHandoff)->Arg(1)->Arg(16)->ArgNames({"pairs"});

// ------------------------------------------------------- workload engine

// One churn tick of the aggregate end-host layer at the 10k-domain rung's
// scale: 2.5k Zipf-ranked groups over 10240 domains at the default
// arrival/lifetime mix, a steady-state population already loaded. Per-tick
// cost is O(groups + arrivals), not O(cells) — this is the number that
// keeps a simulated week at the 10k rung affordable.
void BM_WorkloadTick(benchmark::State& state) {
  const std::uint32_t domains = static_cast<std::uint32_t>(state.range(0));
  workload::Spec spec;
  spec.enabled = true;
  spec.groups = 2500;
  spec.sim_days = 10000.0;  // never exhaust the horizon mid-benchmark
  std::vector<std::uint32_t> roots;
  roots.reserve(static_cast<std::size_t>(spec.groups));
  for (int g = 0; g < spec.groups; ++g) {
    roots.push_back(static_cast<std::uint32_t>(g) % domains);
  }
  workload::Engine engine(spec, domains, std::move(roots), 42);
  engine.set_hops_fn([](std::uint32_t g, std::uint32_t d) {
    return (g + d) % 7 + 1;  // synthetic topology: nonzero, cheap
  });
  // Load the steady state the week-long run spends its time in (~2 days
  // of warmup at the default rates), so the timed ticks sample the
  // realistic regime, not the empty ramp.
  for (int warm = 0; warm < 288; ++warm) engine.tick();
  for (auto _ : state) {
    const workload::TickStats stats = engine.tick();
    benchmark::DoNotOptimize(stats.joins);
    if (engine.ticks_done() >= spec.ticks()) {
      state.SkipWithError("workload horizon exhausted; raise sim_days");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["members"] =
      static_cast<double>(engine.members_total());
}
BENCHMARK(BM_WorkloadTick)->Arg(10240)->ArgNames({"domains"});

}  // namespace

// google-benchmark consumes its own --benchmark_* flags; everything it
// leaves behind goes through the shared parser, which supplies --help and
// rejects unknown flags like every other bench binary.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  eval::Args args("micro_core",
                  "google-benchmark micro-benchmarks for the hot data "
                  "structures (plus the --benchmark_* flags)");
  if (!args.parse(argc, argv)) return args.exit_code();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
