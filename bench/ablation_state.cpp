// Ablation A4: forwarding-state scaling (§7 "Scaling forwarding entries").
//
// A root domain leases many group addresses out of one contiguous MASC
// range; members in a few domains join them all. Per-router raw (*,G)
// entry counts grow linearly with group count, while the (*,G-prefix)
// aggregated representation BGMP provides for — one entry per maximal
// group prefix with an identical target list — stays near the number of
// distinct trees. "Its effectiveness will depend on the location of the
// group members": the sweep also shows the degraded case where every
// group has a different member set.
//
// Usage: ablation_state [--groups N]
#include <cstdio>
#include <vector>

#include "core/domain.hpp"
#include "core/internet.hpp"
#include "eval/args.hpp"

namespace {

core::Group nth_group(int n) {
  return net::Ipv4Addr{net::Ipv4Addr::parse("224.0.128.0").value() +
                       static_cast<std::uint32_t>(n)};
}

}  // namespace

int main(int argc, char** argv) {
  int max_groups = 128;
  eval::Args args("ablation_state",
                  "Ablation A4: raw vs aggregated (*,G) forwarding state");
  args.opt("--groups", &max_groups, "largest group count in the sweep");
  if (!args.parse(argc, argv)) return args.exit_code();

  std::printf("== Ablation A4: (*,G) vs aggregated (*,G-prefix) state ==\n");
  std::printf("%8s | %22s | %22s\n", "", "same members (2 domains)",
              "alternating members");
  std::printf("%8s | %10s %11s | %10s %11s\n", "groups", "raw", "aggregated",
              "raw", "aggregated");

  for (int groups = 2; groups <= max_groups; groups *= 2) {
    std::size_t raw_same = 0;
    std::size_t agg_same = 0;
    std::size_t raw_alt = 0;
    std::size_t agg_alt = 0;
    for (const bool alternating : {false, true}) {
      // root --- transit --- m1 / m2
      core::Internet net;
      core::Domain& root = net.add_domain({.id = 1, .name = "root"});
      core::Domain& transit = net.add_domain({.id = 2, .name = "transit"});
      core::Domain& m1 = net.add_domain({.id = 3, .name = "m1"});
      core::Domain& m2 = net.add_domain({.id = 4, .name = "m2"});
      net.link(root, transit);
      net.link(transit, m1);
      net.link(transit, m2);
      root.originate_group_range(net::Prefix::parse("224.0.128.0/24"));
      net.settle();
      for (int g = 0; g < groups; ++g) {
        if (!alternating || g % 2 == 0) m1.host_join(nth_group(g));
        if (!alternating || g % 2 == 1) m2.host_join(nth_group(g));
      }
      net.settle();
      const bgmp::Router& r = transit.bgmp_router();
      if (alternating) {
        raw_alt = r.entry_count();
        agg_alt = r.aggregated_star_count();
      } else {
        raw_same = r.entry_count();
        agg_same = r.aggregated_star_count();
      }
    }
    std::printf("%8d | %10zu %11zu | %10zu %11zu\n", groups, raw_same,
                agg_same, raw_alt, agg_alt);
  }
  std::printf(
      "\nWith identical member sets, the transit router's state collapses\n"
      "to one aggregated entry per contiguous range; alternating member\n"
      "sets leave two target-list classes (one per member domain).\n");
  return 0;
}
