// Figure 4 reproduction (E3): path-length overhead of the four
// inter-domain distribution-tree types, relative to shortest-path trees.
//
// The paper used a 3326-node topology derived from 1998 BGP dumps; this
// harness substitutes a seeded preferential-attachment AS-level graph of
// the same size (or transit–stub via --topology=ts, or a real edge list
// via --topology-file). For each group size in 1..1000, random receiver
// sets, a random source and a root at the group initiator's domain are
// drawn; the series reported are the ratios tree/SPT (average and max
// over receivers, averaged over trials):
//
//   unidirectional (PIM-SM-style),  bidirectional (CBT/BGMP),
//   hybrid (BGMP with source-specific branches).
//
// Expected shape (paper): hybrid avg <~1.2x, bidirectional avg <~1.3x,
// unidirectional avg ~2x; maxima up to ~4x / ~4.5x / ~6x.
//
// --protocol-check additionally runs sampled scenarios through the real
// BGP+BGMP protocol stack and verifies the per-receiver hop counts equal
// the model's (bidirectional and hybrid).
//
// Usage: fig4_tree_quality [--nodes N] [--trials N] [--seed N]
//                          [--topology ba|ts] [--topology-file PATH]
//                          [--csv PATH] [--protocol-check]
//                          [--metrics-out PATH]
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "core/internet.hpp"
#include "eval/args.hpp"
#include "eval/tree_model.hpp"
#include "net/rng.hpp"
#include "obs/metrics.hpp"
#include "topology/generators.hpp"

namespace {

using topology::NodeId;

// Default output lands next to the binary (i.e. under build/), not in the
// invoking directory, so runs from a source checkout never litter the
// repo root with generated artifacts.
std::string beside_binary(const char* argv0, const char* filename) {
  const std::string self(argv0);
  const auto slash = self.find_last_of('/');
  if (slash == std::string::npos) return filename;
  return self.substr(0, slash + 1) + filename;
}

struct Accumulated {
  double avg_sum = 0.0;
  double max_sum = 0.0;
  void add(const eval::PathLengthRatios& r) {
    avg_sum += r.average;
    max_sum += r.maximum;
  }
};

eval::GroupScenario draw_scenario(const topology::Graph& graph,
                                  std::size_t receivers, net::Rng& rng) {
  eval::GroupScenario scenario;
  // The root is the group initiator's domain (§5.1); the paper draws the
  // source randomly, so initiator == first receiver drawn.
  std::set<NodeId> receiver_set;
  while (receiver_set.size() < receivers) {
    receiver_set.insert(static_cast<NodeId>(rng.index(graph.node_count())));
  }
  scenario.receivers.assign(receiver_set.begin(), receiver_set.end());
  scenario.root = scenario.receivers[rng.index(scenario.receivers.size())];
  scenario.source = static_cast<NodeId>(rng.index(graph.node_count()));
  return scenario;
}

// Verifies sampled scenarios through the real protocol stack.
int protocol_check(std::uint64_t seed, const char* metrics_out) {
  std::printf("\n== protocol check: BGMP trees vs model (n=400) ==\n");
  net::Rng rng(seed);
  const topology::Graph graph = topology::make_as_level(400, 2, rng);
  int mismatches = 0;
  for (const std::size_t group_size : {2u, 8u, 32u, 96u}) {
    core::Internet net;
    std::map<const core::Domain*, std::vector<int>> hops;
    net.set_delivery_observer([&](const core::Delivery& d) {
      hops[d.domain].push_back(d.hops);
    });
    const std::vector<core::Domain*> domains = net.build_from_graph(graph);
    eval::GroupScenario scenario = draw_scenario(graph, group_size, rng);
    const core::Group group = net::Ipv4Addr::parse("224.0.128.1");
    domains[scenario.root]->originate_group_range(
        net::Prefix::parse("224.0.128.0/24"));
    domains[scenario.source]->announce_unicast();
    net.settle();
    for (const NodeId r : scenario.receivers) domains[r]->host_join(group);
    net.settle();

    // Model over the protocol's converged next hops.
    std::map<const bgp::Speaker*, NodeId> s2n;
    for (NodeId n = 0; n < domains.size(); ++n) {
      s2n[&domains[n]->speaker()] = n;
    }
    const auto rib_tree = [&](bgp::RouteType type, net::Ipv4Addr addr,
                              NodeId root) {
      topology::BfsTree tree;
      tree.source = root;
      tree.dist.assign(domains.size(), topology::kUnreachable);
      tree.parent.assign(domains.size(), topology::kUnreachable);
      for (NodeId n = 0; n < domains.size(); ++n) {
        const auto hit = domains[n]->speaker().lookup(type, addr);
        if (!hit) continue;
        if (hit->next_hop == nullptr) {
          tree.dist[n] = 0;
          tree.parent[n] = n;
        } else {
          tree.dist[n] =
              static_cast<std::uint32_t>(hit->route.as_path.size());
          tree.parent[n] = s2n.at(hit->next_hop);
        }
      }
      return tree;
    };
    const net::Ipv4Addr source_host =
        domains[scenario.source]->host_address(1);
    const eval::TreeModel model(
        graph, scenario,
        rib_tree(bgp::RouteType::kGroup, group, scenario.root),
        rib_tree(bgp::RouteType::kMulticast, source_host, scenario.source));

    const auto bidir = model.path_lengths(eval::TreeType::kBidirectional);
    const auto hyb = model.path_lengths(eval::TreeType::kHybrid);
    std::set<NodeId> branchers;
    for (std::size_t i = 0; i < scenario.receivers.size(); ++i) {
      if (hyb[i] < bidir[i]) {
        branchers.insert(scenario.receivers[i]);
        domains[scenario.receivers[i]]->build_source_branch(source_host,
                                                            group);
      }
    }
    net.settle();
    // Branch copies serve branchers on their branch paths; the shared
    // tree serves everyone else untouched — exactly the hybrid model.
    const auto expected = model.path_lengths(eval::TreeType::kHybrid);
    (void)branchers;
    hops.clear();
    domains[scenario.source]->send(group);
    net.settle();
    for (std::size_t i = 0; i < scenario.receivers.size(); ++i) {
      const core::Domain* d = domains[scenario.receivers[i]];
      const auto it = hops.find(d);
      const bool ok = it != hops.end() && it->second.size() == 1 &&
                      it->second[0] == static_cast<int>(expected[i]);
      if (!ok) {
        ++mismatches;
        std::printf("  MISMATCH group_size=%zu receiver=%u expected=%u"
                    " got=%d copies=%zu\n",
                    group_size, scenario.receivers[i], expected[i],
                    it == hops.end() ? -1 : it->second[0],
                    it == hops.end() ? 0 : it->second.size());
      }
    }
    // Protocol accounting comes from the stack's metrics snapshot rather
    // than hand-kept tallies: the same counters every component
    // incremented while the scenario ran.
    const obs::Snapshot snap = net.metrics_snapshot();
    std::printf(
        "  group size %3zu: %zu receivers verified"
        " (joins=%llu data_fwd=%llu tree_entries=%.0f deliveries=%llu)\n",
        group_size, scenario.receivers.size(),
        static_cast<unsigned long long>(
            snap.counter_value("bgmp.joins_sent")),
        static_cast<unsigned long long>(
            snap.counter_value("bgmp.data_forwarded")),
        snap.gauge_value("bgmp.tree_entries"),
        static_cast<unsigned long long>(
            snap.counter_value("core.deliveries")));
    // Measured latency quantiles from the protocol run: how long a join
    // took to graft onto the tree, and how long BGP updates took to settle.
    const obs::HistogramStats join =
        snap.histogram_stats("bgmp.join_propagation_latency");
    const obs::HistogramStats route =
        snap.histogram_stats("bgp.route_convergence_latency");
    std::printf(
        "                  join latency   p50 %.3fs p95 %.3fs p99 %.3fs"
        " (n=%llu)\n"
        "                  route converge p50 %.3fs p95 %.3fs p99 %.3fs"
        " (n=%llu)\n",
        join.p50, join.p95, join.p99,
        static_cast<unsigned long long>(join.count), route.p50, route.p95,
        route.p99, static_cast<unsigned long long>(route.count));
    if (metrics_out != nullptr) {
      std::ofstream file(metrics_out);
      snap.write_json(file);
    }
  }
  if (metrics_out != nullptr) {
    std::printf("  (last scenario's metrics snapshot written to %s)\n",
                metrics_out);
  }
  std::printf("  %s\n", mismatches == 0 ? "all hop counts match the model"
                                        : "MISMATCHES FOUND");
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 3326;
  int trials = 10;
  std::uint64_t seed = 1998;
  std::string kind = "ba";
  std::string file;
  std::string csv_path = beside_binary(argv[0], "fig4_tree_quality.csv");
  std::string metrics_out;
  bool run_protocol_check = false;
  eval::Args args("fig4_tree_quality",
                  "Figure 4: path-length overhead of the four tree types");
  args.opt("--nodes", &nodes, "topology size (domains)");
  args.opt("--trials", &trials, "trials per group size");
  args.opt("--seed", &seed, "topology/receiver-draw seed");
  args.opt("--topology", &kind, "generator: ba or ts");
  args.opt("--topology-file", &file, "real edge list to load instead");
  args.opt("--csv", &csv_path, "series output path");
  args.opt("--metrics-out", &metrics_out, "metrics snapshot output path");
  args.flag("--protocol-check", &run_protocol_check,
            "verify sampled scenarios through the real protocol stack");
  if (!args.parse(argc, argv)) return args.exit_code();

  net::Rng rng(seed);
  topology::Graph graph;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    graph = topology::load_edge_list(in);
  } else if (kind == "ts") {
    graph = topology::make_transit_stub({}, rng);
  } else {
    graph = topology::make_as_level(static_cast<std::size_t>(nodes), 2, rng);
  }
  std::printf(
      "== Figure 4: path-length overhead vs shortest-path trees ==\n"
      "topology: %zu domains, %zu links (%s), %d trials/point, seed %llu\n\n",
      graph.node_count(), graph.edge_count(),
      file.empty() ? kind.c_str() : file.c_str(), trials,
      static_cast<unsigned long long>(seed));

  const std::vector<std::size_t> sizes{1,  2,  5,   10,  20,  50,
                                       100, 200, 500, 1000};
  std::FILE* csv = std::fopen(csv_path.c_str(), "w");
  if (csv != nullptr) {
    std::fprintf(csv,
                 "receivers,uni_avg,uni_max,bidir_avg,bidir_max,"
                 "hybrid_avg,hybrid_max\n");
  }
  std::printf("%9s | %17s | %17s | %17s\n", "", "unidirectional",
              "bidirectional", "hybrid");
  std::printf("%9s | %8s %8s | %8s %8s | %8s %8s\n", "receivers", "avg",
              "max", "avg", "max", "avg", "max");
  for (const std::size_t size : sizes) {
    if (size >= graph.node_count()) break;
    Accumulated uni, bidir, hybrid;
    for (int t = 0; t < trials; ++t) {
      const eval::GroupScenario scenario = draw_scenario(graph, size, rng);
      const eval::TreeModel model(graph, scenario);
      const auto spt = model.path_lengths(eval::TreeType::kShortestPath);
      uni.add(eval::ratios_vs_spt(
          spt, model.path_lengths(eval::TreeType::kUnidirectional)));
      bidir.add(eval::ratios_vs_spt(
          spt, model.path_lengths(eval::TreeType::kBidirectional)));
      hybrid.add(eval::ratios_vs_spt(
          spt, model.path_lengths(eval::TreeType::kHybrid)));
    }
    const double n = trials;
    std::printf("%9zu | %8.3f %8.3f | %8.3f %8.3f | %8.3f %8.3f\n", size,
                uni.avg_sum / n, uni.max_sum / n, bidir.avg_sum / n,
                bidir.max_sum / n, hybrid.avg_sum / n, hybrid.max_sum / n);
    if (csv != nullptr) {
      std::fprintf(csv, "%zu,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", size,
                   uni.avg_sum / n, uni.max_sum / n, bidir.avg_sum / n,
                   bidir.max_sum / n, hybrid.avg_sum / n, hybrid.max_sum / n);
    }
  }
  if (csv != nullptr) {
    std::fclose(csv);
    std::printf("(series written to %s)\n", csv_path.c_str());
  }
  std::printf(
      "\npaper's reported shape: hybrid avg <1.2x (max ~4x), bidirectional\n"
      "avg <1.3x (max ~4.5x), unidirectional avg ~2x (max ~6x).\n");

  if (run_protocol_check) {
    return protocol_check(seed, metrics_out.empty() ? nullptr
                                                    : metrics_out.c_str()) == 0
               ? 0
               : 1;
  }
  return 0;
}
