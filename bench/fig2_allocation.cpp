// Figure 2 reproduction (E1 + E2): the MASC claim algorithm simulated over
// the paper's workload —
//
//   50 top-level domains x 50 children; each child requests blocks of 256
//   addresses with 30-day lifetimes at inter-request times U(1h, 95h);
//   800 simulated days.
//
// Prints the Figure-2(a) utilization series and the Figure-2(b) G-RIB
// size series (average and max over all 2550 domains), plus steady-state
// summaries against the paper's reported values (~50% utilization; G-RIB
// mean ~175, max <= ~180). Writes fig2_allocation.csv next to the binary.
//
// Usage: fig2_allocation [--days N] [--tops N] [--children N] [--seed N]
//                        [--max-prefixes N] [--csv PATH] [--metrics-out PATH]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "eval/args.hpp"
#include "eval/masc_sim.hpp"
#include "obs/metrics.hpp"

namespace {

// Default output lands next to the binary (i.e. under build/), not in the
// invoking directory, so runs from a source checkout never litter the
// repo root with generated artifacts.
std::string beside_binary(const char* argv0, const char* filename) {
  const std::string self(argv0);
  const auto slash = self.find_last_of('/');
  if (slash == std::string::npos) return filename;
  return self.substr(0, slash + 1) + filename;
}

}  // namespace

int main(int argc, char** argv) {
  int days = 800;
  int tops = 50;
  int children = 50;
  int max_prefixes = 2;
  int exchanges = 0;
  std::uint64_t seed = 1998;
  std::string csv_path = beside_binary(argv[0], "fig2_allocation.csv");
  std::string metrics_out;

  eval::Args args("fig2_allocation",
                  "Figure 2: MASC address allocation over the paper's "
                  "50x50-domain workload");
  args.opt("--days", &days, "simulated days");
  args.opt("--tops", &tops, "top-level domains");
  args.opt("--children", &children, "children per top-level domain");
  args.opt("--seed", &seed, "simulation seed");
  args.opt("--max-prefixes", &max_prefixes, "prefixes-per-domain goal");
  args.opt("--exchanges", &exchanges, "exchange count (0 = one mesh)");
  args.opt("--csv", &csv_path, "daily series output path");
  args.opt("--metrics-out", &metrics_out, "metrics snapshot output path");
  if (!args.parse(argc, argv)) return args.exit_code();

  eval::MascSimParams params;
  params.horizon = net::SimTime::days(days);
  params.top_level_domains = static_cast<std::size_t>(tops);
  params.children_per_top = static_cast<std::size_t>(children);
  params.seed = seed;
  params.pool.max_prefixes = max_prefixes;
  params.exchanges = static_cast<std::size_t>(exchanges);

  std::printf(
      "== Figure 2: MASC address allocation (%zu top-level x %zu children, "
      "%lld days, seed %llu) ==\n",
      params.top_level_domains, params.children_per_top,
      static_cast<long long>(params.horizon.to_days()),
      static_cast<unsigned long long>(params.seed));

  const eval::MascSimResult result = eval::run_masc_sim(params);

  std::FILE* csv = std::fopen(csv_path.c_str(), "w");
  if (csv != nullptr) {
    std::fprintf(csv,
                 "day,utilization,grib_average,grib_max,"
                 "requested_addresses,top_level_claimed,total_prefixes\n");
  }
  std::printf("%8s %12s %12s %9s %12s %14s\n", "day", "utilization",
              "grib_avg", "grib_max", "requested", "claimed(224/4)");
  for (const eval::MascSimSample& s : result.samples) {
    if (csv != nullptr) {
      std::fprintf(csv, "%.0f,%.6f,%.3f,%zu,%llu,%llu,%zu\n", s.day,
                   s.utilization, s.grib_average, s.grib_max,
                   static_cast<unsigned long long>(s.requested_addresses),
                   static_cast<unsigned long long>(s.top_level_claimed),
                   s.total_prefixes);
    }
    const auto day = static_cast<long long>(s.day);
    if (day % 25 == 0) {  // console: every 25 days
      std::printf("%8lld %12.3f %12.1f %9zu %12llu %14llu\n", day,
                  s.utilization, s.grib_average, s.grib_max,
                  static_cast<unsigned long long>(s.requested_addresses),
                  static_cast<unsigned long long>(s.top_level_claimed));
    }
  }
  if (csv != nullptr) {
    std::fclose(csv);
    std::printf("(full daily series written to %s)\n", csv_path.c_str());
  }

  const double steady_from = params.horizon.to_days() / 2.0;
  const eval::MascSimSample steady = result.steady_state(steady_from);
  const double blocks =
      static_cast<double>(steady.requested_addresses) / 256.0;
  // The run's accounting comes from its metrics snapshot — the same
  // registry counters the simulation incremented while serving requests.
  const obs::Snapshot& metrics = result.final_metrics;
  std::printf(
      "\n== steady state (day >= %.0f) vs the paper ==\n"
      "  utilization            %.3f   (paper: ~0.50)\n"
      "  G-RIB average          %.1f   (paper: ~175)\n"
      "  G-RIB max              %zu   (paper: <= ~180)\n"
      "  outstanding blocks     %.0f   (paper: 37500)\n"
      "  aggregation factor     %.0fx  (blocks per G-RIB route)\n"
      "  allocation failures    %llu\n"
      "  requests served        %llu\n"
      "  expansions executed    %llu\n",
      steady_from, steady.utilization, steady.grib_average, steady.grib_max,
      blocks, blocks / steady.grib_average,
      static_cast<unsigned long long>(
          metrics.counter_value("masc.allocation_failures")),
      static_cast<unsigned long long>(
          metrics.counter_value("masc.requests_served")),
      static_cast<unsigned long long>(
          metrics.counter_value("masc.expansions_executed")));

  // Implied §4.1 claim latencies (each expansion waits out one waiting
  // period at the protocol level; collisions restart it).
  const obs::HistogramStats grant =
      metrics.histogram_stats("masc.claim_grant_latency");
  const obs::HistogramStats collide =
      metrics.histogram_stats("masc.collision_resolution_latency");
  std::printf(
      "\n== implied claim latency (waiting period %.0f h) ==\n"
      "  claim grants           %llu   p50 %.1f h  p95 %.1f h  p99 %.1f h\n"
      "  collision resolutions  %llu   p50 %.1f h  p95 %.1f h  p99 %.1f h\n",
      params.claim_waiting_period.to_seconds() / 3600.0,
      static_cast<unsigned long long>(grant.count), grant.p50 / 3600.0,
      grant.p95 / 3600.0, grant.p99 / 3600.0,
      static_cast<unsigned long long>(collide.count), collide.p50 / 3600.0,
      collide.p95 / 3600.0, collide.p99 / 3600.0);

  if (!metrics_out.empty()) {
    std::ofstream file(metrics_out);
    metrics.write_json(file);
    std::printf("(metrics snapshot written to %s)\n", metrics_out.c_str());
  }
  return 0;
}
