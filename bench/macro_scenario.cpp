// M2: macro benchmark — the full MASC → MAAS → BGP → BGMP pipeline at
// scale. Builds a backbone ring of top-level domains with customer
// children, runs the claim–collide exchange for every child, creates
// groups, joins members from remote domains, and pushes data down the
// trees. Reports wall time, simulated events, and the protocol message
// economy (the number a batching change must move) as JSON.
//
// Usage:
//   macro_scenario [--domains N] [--groups G] [--joins J] [--seed S]
//                  [--out FILE] [--check BASELINE] [--tolerance FRAC]
//
// --check compares this run against a previously emitted JSON file: with
// matching parameters the converged RIB digest must match exactly, and
// the deterministic work counters (events run, messages sent, BGP
// updates) may grow at most FRAC (default 0.25) before the exit code
// turns nonzero. Wall-clock throughput is reported but not gated — it is
// a property of the host, not of the code under test.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/speaker.hpp"
#include "core/domain.hpp"
#include "core/internet.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"

namespace {

struct Params {
  int domains = 64;
  int groups = 32;
  int joins = 4;  // member domains per group
  std::uint64_t seed = 1;
  std::string out;
  std::string check;
  double tolerance = 0.25;
};

struct Results {
  Params params;
  double wall_seconds = 0.0;
  std::uint64_t events_run = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bgp_updates_sent = 0;
  std::uint64_t bgmp_joins_sent = 0;
  std::uint64_t claims_granted = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t grib_entries_total = 0;
  std::uint64_t rib_digest = 0;  // FNV-1a over every domain's final RIBs
  double events_per_second = 0.0;
  double items_per_second = 0.0;  // protocol ops (claims+joins+deliveries)
};

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001B3ull;
}

// Digest of the converged routing state: every domain's unicast RIB and
// G-RIB best routes, in address order. Two runs that converge to the same
// tables produce the same digest regardless of how many messages it took.
std::uint64_t rib_digest(core::Internet& net) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < net.domain_count(); ++i) {
    core::Domain& d = net.domain(i);
    for (const bgp::RouteType type :
         {bgp::RouteType::kUnicast, bgp::RouteType::kGroup}) {
      d.speaker().rib(type).for_each_best(
          [&](const net::Prefix& p, const bgp::Candidate& c) {
            fnv_mix(h, p.base().value());
            fnv_mix(h, static_cast<std::uint64_t>(p.length()));
            fnv_mix(h, c.route.origin_as);
            fnv_mix(h, c.route.as_path.size());
          });
    }
  }
  return h;
}

Results run_scenario(const Params& params) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  core::Internet net(params.seed);
  const int tops = std::max(2, params.domains / 8);
  std::vector<core::Domain*> top_domains;
  std::vector<core::Domain*> children;
  for (int i = 0; i < params.domains; ++i) {
    const bool is_top = i < tops;
    core::Domain& d = net.add_domain(
        {.id = static_cast<bgp::DomainId>(i + 1),
         .name = (is_top ? "T" : "C") + std::to_string(i + 1)});
    d.announce_unicast();
    (is_top ? top_domains : children).push_back(&d);
  }
  // Backbone ring of top-level domains; children hang off them
  // round-robin as customers and MASC children.
  for (int i = 0; i < tops; ++i) {
    net.link(*top_domains[i], *top_domains[(i + 1) % tops]);
    if (tops > 2 && i + 2 < tops) {  // chords shorten paths
      net.link(*top_domains[i], *top_domains[i + 2]);
    }
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    core::Domain& parent = *top_domains[i % tops];
    net.link(parent, *children[i], bgp::Relationship::kCustomer);
    net.masc_parent(*children[i], parent);
  }
  // Top-level domains all claim from the shared 224/4, so each must hear
  // the others' claims: a full sibling mesh (§4.4's exchange-point role).
  for (int i = 0; i < tops; ++i) {
    for (int j = i + 1; j < tops; ++j) {
      net.masc_siblings(*top_domains[i], *top_domains[j]);
    }
  }

  // Phase 1: address claiming. Top-level domains carve 224/4 between
  // themselves (collisions resolved by the waiting period); every child
  // then claims a /24 out of its parent's range.
  for (core::Domain* t : top_domains) {
    t->masc_node().set_spaces({net::multicast_space()});
    t->masc_node().request_space(65536);
  }
  net.settle();
  for (core::Domain* c : children) c->masc_node().request_space(256);
  net.settle();

  // Phase 2: group lifetime. Children lease groups from their MAAS,
  // remote domains join, the initiator sends one packet per group.
  net::Rng rng(params.seed * 7919 + 17);
  struct Live {
    core::Domain* root;
    core::Group group;
  };
  std::vector<Live> live;
  for (int g = 0; g < params.groups && !children.empty(); ++g) {
    core::Domain* initiator = children[g % children.size()];
    auto lease = initiator->create_group();
    if (!lease.has_value()) {
      net.settle();  // claim path is asynchronous; retry once settled
      lease = initiator->create_group();
    }
    if (lease.has_value()) live.push_back({initiator, lease->address});
  }
  net.settle();
  for (const Live& l : live) {
    for (int j = 0; j < params.joins; ++j) {
      const auto pick = rng.uniform_int(0, params.domains - 1);
      core::Domain& member = net.domain(static_cast<std::size_t>(pick));
      if (&member != l.root) member.host_join(l.group);
    }
  }
  net.settle();
  for (const Live& l : live) l.root->send(l.group);
  net.settle();

  // Phase 3: backbone perturbation. Flapping a ring link withdraws every
  // route carried over it and, on recovery, resyncs whole tables — the
  // mass-reselection fallout that dominates real BGP message load.
  for (int i = 0; i + 1 < tops; i += 2) {
    net.set_link_state(*top_domains[i], *top_domains[i + 1], false);
    net.settle();
    net.set_link_state(*top_domains[i], *top_domains[i + 1], true);
    net.settle();
  }

  const auto snap = net.metrics_snapshot();
  Results r;
  r.params = params;
  r.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  r.events_run = net.events().events_run();
  r.messages_sent = snap.counter_value("net.messages_sent");
  r.bgp_updates_sent = snap.counter_value("bgp.updates_sent");
  r.bgmp_joins_sent = snap.counter_value("bgmp.joins_sent");
  r.claims_granted = snap.counter_value("masc.claims_granted");
  r.deliveries = snap.counter_value("core.deliveries");
  for (std::size_t i = 0; i < net.domain_count(); ++i) {
    r.grib_entries_total +=
        net.domain(i).speaker().rib(bgp::RouteType::kGroup).size();
  }
  r.rib_digest = rib_digest(net);
  r.events_per_second =
      static_cast<double>(r.events_run) / r.wall_seconds;
  const auto items = r.claims_granted + r.bgmp_joins_sent + r.deliveries;
  r.items_per_second = static_cast<double>(items) / r.wall_seconds;
  return r;
}

void write_json(const Results& r, std::ostream& os) {
  os << "{\n"
     << "  \"bench\": \"macro_scenario\",\n"
     << "  \"params\": {\"domains\": " << r.params.domains
     << ", \"groups\": " << r.params.groups
     << ", \"joins\": " << r.params.joins << ", \"seed\": " << r.params.seed
     << "},\n"
     << "  \"wall_seconds\": " << r.wall_seconds << ",\n"
     << "  \"events_run\": " << r.events_run << ",\n"
     << "  \"events_per_second\": " << r.events_per_second << ",\n"
     << "  \"items_per_second\": " << r.items_per_second << ",\n"
     << "  \"messages_sent\": " << r.messages_sent << ",\n"
     << "  \"bgp_updates_sent\": " << r.bgp_updates_sent << ",\n"
     << "  \"bgmp_joins_sent\": " << r.bgmp_joins_sent << ",\n"
     << "  \"claims_granted\": " << r.claims_granted << ",\n"
     << "  \"deliveries\": " << r.deliveries << ",\n"
     << "  \"grib_entries_total\": " << r.grib_entries_total << ",\n"
     << "  \"rib_digest\": " << r.rib_digest << "\n"
     << "}\n";
}

// Minimal field scraper for our own flat JSON schema — keeps the
// regression check self-contained (no JSON library, no python).
bool scrape(const std::string& text, const std::string& key, double& out) {
  const auto at = text.find('"' + key + '"');
  if (at == std::string::npos) return false;
  const auto colon = text.find(':', at);
  if (colon == std::string::npos) return false;
  out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

int check_against(const Results& now, const std::string& path,
                  double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "macro_scenario: cannot read baseline " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string base = buf.str();

  int failures = 0;
  const auto exact = [&](const char* key, std::uint64_t current) {
    double expected = 0.0;
    if (!scrape(base, key, expected)) {
      std::cerr << "macro_scenario: baseline lacks \"" << key << "\"\n";
      ++failures;
      return;
    }
    if (static_cast<double>(current) != expected) {
      std::cerr << "macro_scenario: " << key << " diverged: baseline "
                << static_cast<std::uint64_t>(expected) << ", now "
                << current << "\n";
      ++failures;
    }
  };
  // Deterministic (hardware-independent) quantities: the message economy
  // may grow at most `tolerance` before the check fails.
  const auto bounded = [&](const char* key, std::uint64_t current) {
    double expected = 0.0;
    if (!scrape(base, key, expected)) {
      std::cerr << "macro_scenario: baseline lacks \"" << key << "\"\n";
      ++failures;
      return;
    }
    if (static_cast<double>(current) > expected * (1.0 + tolerance)) {
      std::cerr << "macro_scenario: " << key << " regressed > "
                << tolerance * 100 << "%: baseline "
                << static_cast<std::uint64_t>(expected) << ", now " << current
                << "\n";
      ++failures;
    }
  };
  double p = 0.0;
  const bool same_shape =
      scrape(base, "domains", p) && static_cast<int>(p) == now.params.domains &&
      scrape(base, "groups", p) && static_cast<int>(p) == now.params.groups &&
      scrape(base, "joins", p) && static_cast<int>(p) == now.params.joins &&
      scrape(base, "seed", p) &&
      static_cast<std::uint64_t>(p) == now.params.seed;
  if (same_shape) {
    // Converged state must be reproduced bit-for-bit…
    exact("grib_entries_total", now.grib_entries_total);
    exact("rib_digest", now.rib_digest);
    // …while the work done to get there may drift a little under
    // legitimate changes, but not regress past the tolerance.
    bounded("events_run", now.events_run);
    bounded("messages_sent", now.messages_sent);
    bounded("bgp_updates_sent", now.bgp_updates_sent);
  } else {
    std::cerr << "macro_scenario: baseline parameters differ; "
                 "skipping deterministic checks\n";
  }
  // Wall-clock throughput varies with the host; report, don't gate.
  double base_eps = 0.0;
  if (scrape(base, "events_per_second", base_eps) && base_eps > 0.0) {
    std::cerr << "macro_scenario: throughput " << now.events_per_second
              << " events/s vs baseline " << base_eps << " ("
              << (now.events_per_second / base_eps) << "x)\n";
  }
  if (failures == 0) {
    std::cerr << "macro_scenario: within baseline (" << path << ")\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Params params;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "macro_scenario: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--domains") {
      params.domains = std::atoi(next());
    } else if (arg == "--groups") {
      params.groups = std::atoi(next());
    } else if (arg == "--joins") {
      params.joins = std::atoi(next());
    } else if (arg == "--seed") {
      params.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      params.out = next();
    } else if (arg == "--check") {
      params.check = next();
    } else if (arg == "--tolerance") {
      params.tolerance = std::strtod(next(), nullptr);
    } else {
      std::cerr << "macro_scenario: unknown flag " << arg << "\n";
      return 2;
    }
  }

  const Results r = run_scenario(params);
  write_json(r, std::cout);
  if (!params.out.empty()) {
    std::ofstream out(params.out);
    write_json(r, out);
  }
  if (!params.check.empty()) {
    return check_against(r, params.check, params.tolerance);
  }
  return 0;
}
