// M2: macro benchmark — the full MASC → MAAS → BGP → BGMP pipeline at
// scale. Builds the shared scenario shape (src/eval/scenario.hpp): a
// backbone ring of top-level domains with customer children, the
// claim–collide exchange, group leases with remote joins, data pushed
// down the trees, then backbone link flaps. Reports wall time, simulated
// events, the protocol message economy, peak RSS and routing-state bytes
// as JSON.
//
// Usage:
//   macro_scenario [--domains N] [--groups G] [--joins J] [--seed S]
//                  [--max-tops T] [--active-children A] [--flap-pairs F]
//                  [--ladder 256,1000,4000,10000]
//                  [--out FILE] [--check BASELINE] [--tolerance FRAC]
//                  [--eps-floor FRAC]
//                  [--telemetry] [--telemetry-interval SEC]
//                  [--span-sample RATE] [--telemetry-budget FRAC]
//                  [--telemetry-reps N] [--telemetry-out PREFIX]
//                  [--workload] [--workload-groups G] [--workload-days D]
//                  [--workload-tick SEC] [--workload-arrivals RATE]
//                  [--workload-lifetime SEC]
//
// --workload runs the aggregate end-host layer (src/workload) between
// the join and flap phases: Zipf-popular groups, Poisson join/leave with
// diurnal modulation and flash crowds, BGMP joins/prunes fired on
// 0↔nonzero per-domain member-count transitions. Every rung then reports
// members_total (0 when off) plus the workload_* columns, and --check
// additionally gates members_total and the engine state digest.
//
// --telemetry runs every rung twice — once bare, once with the obs
// flight recorder ticking and head-sampled spans attached — and reports
// the relative events/s cost as `telemetry_overhead`. The off/on pair is
// interleaved --telemetry-reps times (default 3); the overhead is the
// median of the per-pair estimates (adjacent passes see the same host,
// the median discards pairs a noise window straddled) and the throughput
// columns keep each side's fastest pass. The
// telemetry run must reproduce the bare run's digest and event count
// exactly (the instrumentation is passive); --check additionally fails
// when the overhead exceeds --telemetry-budget (default 5%).
//
// --ladder runs one rung per domain count (ascending) and emits a single
// {"bench": "macro_ladder", "rungs": [...]} report. Rungs above 512
// domains cap the backbone at 64 tops, activate only the first 256
// children and flap 2 ring pairs (the regime of few sources and many
// receivers); at or below 512 the legacy uncapped shape is preserved, so
// the committed 256-domain rib_digest is invariant.
//
// --check compares this run against a previously emitted JSON file: the
// baseline rung with matching parameters (a flat old-style report counts
// as one rung) must reproduce the converged RIB digest exactly, and the
// deterministic work counters (events run, messages sent, BGP updates)
// may grow at most FRAC (default 0.25) before the exit code turns
// nonzero. Wall-clock throughput and RSS are reported but not gated —
// they are properties of the host, not of the code under test.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/speaker.hpp"
#include "core/domain.hpp"
#include "core/internet.hpp"
#include "eval/args.hpp"
#include "eval/scenario.hpp"
#include "eval/telemetry.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"
#include "workload/session.hpp"

namespace {

/// Peak resident set size of this process so far, in KiB (Linux
/// ru_maxrss units). Monotonic across rungs — run ladders ascending so
/// each rung's reading approximates its own peak.
std::uint64_t peak_rss_kib() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss);
}

struct Results {
  eval::ScenarioSpec spec;
  double wall_seconds = 0.0;
  std::uint64_t events_run = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bgp_updates_sent = 0;
  std::uint64_t bgmp_joins_sent = 0;
  std::uint64_t claims_granted = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t deliveries_batched = 0;  // drained inline by a link FIFO
  std::uint64_t grib_entries_total = 0;
  std::uint64_t rib_digest = 0;  // FNV-1a over every domain's final RIBs
  double events_per_second = 0.0;
  double items_per_second = 0.0;  // protocol ops (claims+joins+deliveries)
  std::uint64_t peak_rss_kib = 0;
  double state_bytes_per_domain = 0.0;
  // Incremental shortest-path engine work (vs one full build per source).
  std::uint64_t path_full_builds = 0;
  std::uint64_t path_nodes_touched = 0;
  // Mean inter-domain hops actually travelled per delivery vs the
  // shortest possible — the tree-stretch measure of §5.4.
  double delivery_hops_mean = 0.0;
  double delivery_stretch = 0.0;
  // Aggregate end-host layer (--workload): the realized member population
  // and the BGMP economy it induced. members_total is reported on every
  // rung (0 when the workload is off) so ladder reports have a uniform
  // schema; the rest only when the workload ran.
  std::uint64_t members_total = 0;
  std::uint64_t members_peak = 0;
  std::uint64_t workload_joins = 0;
  std::uint64_t workload_tree_joins = 0;
  std::uint64_t workload_tree_prunes = 0;
  std::uint64_t workload_edge_load = 0;
  std::uint64_t workload_engine_digest = 0;
  // Telemetry yield of this run (non-zero only when spec.telemetry is on).
  std::uint64_t recorder_frames = 0;
  std::uint64_t spans_sampled = 0;
  // Filled by the --telemetry comparison pass: throughput with the flight
  // recorder + span sampling attached, and the relative events/s cost
  // ((off − on) / off, so 0.03 = 3% slower with telemetry).
  bool telemetry_measured = false;
  double events_per_second_telemetry = 0.0;
  double telemetry_overhead = 0.0;
  std::uint64_t telemetry_rib_digest = 0;
};

Results run_scenario(const eval::ScenarioSpec& spec,
                     const std::string& telemetry_prefix = {}) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  core::Internet net(spec.seed);
  net.set_threads(spec.threads);
  // Declared after the internet so it detaches before the network dies.
  std::optional<eval::TelemetrySession> telemetry;
  if (spec.telemetry.enabled()) telemetry.emplace(net, spec.telemetry);
  const eval::BuiltScenario topo = eval::build_scenario(net, spec);
  eval::phase_claim(net, topo);

  // Delivery stretch: compare each delivery's travelled hop count with
  // the current shortest path between source and member domain. The
  // queries watch one BFS tree per source domain; the flap phase then
  // exercises the incremental repairs. Pure observation — no events or
  // RNG draws — so the digest gate is unaffected.
  std::uint64_t hops_travelled = 0;
  std::uint64_t hops_shortest = 0;
  std::uint64_t stretch_samples = 0;
  net.set_delivery_observer([&](const core::Delivery& d) {
    core::Domain* source = net.domain_of_address(d.source);
    if (source == nullptr || source == d.domain) return;
    const std::uint32_t shortest = net.domain_hops(*source, *d.domain);
    if (shortest == topology::kUnreachable) return;
    hops_travelled += static_cast<std::uint64_t>(d.hops);
    hops_shortest += shortest;
    ++stretch_samples;
  });

  net::Rng rng = eval::make_workload_rng(spec.seed);
  (void)eval::phase_groups(net, spec, topo, rng);
  // The aggregate end-host layer churns after the legacy join phase and
  // before the flap phase, so the backbone flaps hit trees that carry
  // live membership. A disabled workload leases nothing and draws
  // nothing: the legacy schedule and digests are byte-identical.
  std::unique_ptr<workload::Session> workload_session =
      eval::phase_workload(net, spec, topo);
  if (workload_session) workload_session->run();
  eval::phase_flap(net, spec, topo);

  const auto snap = net.metrics_snapshot();
  Results r;
  r.spec = spec;
  r.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  r.events_run = net.events().events_run();
  r.messages_sent = snap.counter_value("net.messages_sent");
  r.bgp_updates_sent = snap.counter_value("bgp.updates_sent");
  r.bgmp_joins_sent = snap.counter_value("bgmp.joins_sent");
  r.claims_granted = snap.counter_value("masc.claims_granted");
  r.deliveries = snap.counter_value("core.deliveries");
  r.deliveries_batched = snap.counter_value("net.deliveries_batched");
  for (std::size_t i = 0; i < net.domain_count(); ++i) {
    r.grib_entries_total +=
        net.domain(i).speaker().rib(bgp::RouteType::kGroup).size();
  }
  r.rib_digest = eval::rib_digest(net);
  r.events_per_second =
      static_cast<double>(r.events_run) / r.wall_seconds;
  const auto items = r.claims_granted + r.bgmp_joins_sent + r.deliveries;
  r.items_per_second = static_cast<double>(items) / r.wall_seconds;
  r.peak_rss_kib = peak_rss_kib();
  r.state_bytes_per_domain = snap.gauge_value("core.state_bytes_per_domain");
  r.path_full_builds = net.domain_paths().stats().full_builds;
  r.path_nodes_touched = net.domain_paths().stats().nodes_touched;
  if (stretch_samples > 0) {
    r.delivery_hops_mean = static_cast<double>(hops_travelled) /
                           static_cast<double>(stretch_samples);
    r.delivery_stretch = hops_shortest == 0
                             ? 0.0
                             : static_cast<double>(hops_travelled) /
                                   static_cast<double>(hops_shortest);
  }
  if (workload_session) {
    const workload::SessionReport report = workload_session->report();
    r.members_total = report.members_total;
    r.members_peak = report.members_peak;
    r.workload_joins = report.joins_total;
    r.workload_tree_joins = report.tree_joins;
    r.workload_tree_prunes = report.tree_prunes;
    r.workload_edge_load = report.edge_load_total;
    r.workload_engine_digest = report.engine_digest;
  }
  if (telemetry.has_value()) {
    telemetry->final_tick();
    r.recorder_frames = telemetry->recorder_frames();
    r.spans_sampled = telemetry->spans_recorded();
    if (!telemetry_prefix.empty()) {
      const std::string stem =
          telemetry_prefix + "-" + std::to_string(spec.domains);
      std::ofstream rec(stem + ".recorder.jsonl");
      telemetry->flush_recorder(rec);
      std::ofstream spans(stem + ".spans.jsonl");
      telemetry->flush_spans(spans);
      std::ofstream cp(stem + ".critical_path.json");
      telemetry->critical_path().write_json(cp);
    }
  }
  return r;
}

/// The --telemetry comparison pass: re-runs the rung with the flight
/// recorder ticking and 1%-style span sampling attached, verifies the
/// instrumentation was purely passive (identical converged digest — a
/// telemetry build that changes behavior is a bug, not an overhead), and
/// folds the on-column into the off-run's results.
Results run_with_telemetry_column(const eval::ScenarioSpec& spec,
                                  const eval::TelemetrySpec& telemetry,
                                  const std::string& telemetry_prefix,
                                  int reps) {
  // Wall-clock noise on shared runners easily swamps a single off/on pair
  // (the raw events/s of identical runs varies by more than the budget),
  // so the rung runs `reps` interleaved pairs. The two passes of one pair
  // are adjacent in time and see nearly the same host, so each pair's
  // relative overhead is close to unbiased; the median across pairs then
  // discards the pairs a noise window happened to straddle. The reported
  // throughput columns keep each side's fastest pass. Every pass must
  // reproduce the same digest and event count — a telemetry build that
  // changes behavior is a bug, not an overhead.
  eval::ScenarioSpec on_spec = spec;
  on_spec.telemetry = telemetry;
  Results off = run_scenario(spec);
  Results on = run_scenario(on_spec, telemetry_prefix);
  std::vector<double> pair_overheads;
  pair_overheads.push_back(
      (off.events_per_second - on.events_per_second) / off.events_per_second);
  for (int rep = 1; rep < reps; ++rep) {
    const Results off_rep = run_scenario(spec);
    const Results on_rep = run_scenario(on_spec);
    if (on_rep.rib_digest != off.rib_digest ||
        on_rep.events_run != off.events_run ||
        off_rep.rib_digest != off.rib_digest) {
      std::cerr << "macro_scenario: unstable digest across telemetry reps"
                << " (rep " << rep << "): off digest/events "
                << off.rib_digest << "/" << off.events_run
                << ", off_rep digest " << off_rep.rib_digest
                << ", on_rep digest/events " << on_rep.rib_digest << "/"
                << on_rep.events_run << "\n";
      std::exit(1);
    }
    pair_overheads.push_back(
        (off_rep.events_per_second - on_rep.events_per_second) /
        off_rep.events_per_second);
    off.events_per_second =
        std::max(off.events_per_second, off_rep.events_per_second);
    on.events_per_second =
        std::max(on.events_per_second, on_rep.events_per_second);
    off.wall_seconds = std::min(off.wall_seconds, off_rep.wall_seconds);
  }
  if (on.rib_digest != off.rib_digest || on.events_run != off.events_run) {
    std::cerr << "macro_scenario: telemetry changed the simulation: digest "
              << off.rib_digest << " -> " << on.rib_digest << ", events "
              << off.events_run << " -> " << on.events_run << "\n";
    std::exit(1);
  }
  std::sort(pair_overheads.begin(), pair_overheads.end());
  const std::size_t n = pair_overheads.size();
  off.items_per_second =
      static_cast<double>(off.claims_granted + off.bgmp_joins_sent +
                          off.deliveries) /
      off.wall_seconds;
  off.telemetry_measured = true;
  off.events_per_second_telemetry = on.events_per_second;
  off.telemetry_overhead =
      n % 2 == 1 ? pair_overheads[n / 2]
                 : (pair_overheads[n / 2 - 1] + pair_overheads[n / 2]) / 2.0;
  off.telemetry_rib_digest = on.rib_digest;
  off.recorder_frames = on.recorder_frames;
  off.spans_sampled = on.spans_sampled;
  return off;
}

void write_rung(const Results& r, std::ostream& os, const char* indent) {
  const eval::ScenarioSpec& s = r.spec;
  os << indent << "\"params\": {\"domains\": " << s.domains
     << ", \"groups\": " << s.groups << ", \"joins\": " << s.joins
     << ", \"seed\": " << s.seed << ", \"max_tops\": " << s.max_tops
     << ", \"active_children\": " << s.active_children
     << ", \"flap_pairs\": " << s.flap_pairs
     << ", \"threads\": " << s.threads
     << ", \"workload\": " << (s.workload.enabled ? 1 : 0)
     << ", \"workload_groups\": "
     << (s.workload.enabled ? s.workload.groups : 0)
     << ", \"workload_ticks\": "
     << (s.workload.enabled ? s.workload.ticks() : 0)
     << ", \"workload_arrivals_milli\": "
     << (s.workload.enabled
             ? std::llround(s.workload.arrivals_per_second * 1000.0)
             : 0)
     << "},\n"
     << indent << "\"wall_seconds\": " << r.wall_seconds << ",\n"
     << indent << "\"events_run\": " << r.events_run << ",\n"
     << indent << "\"events_per_second\": " << r.events_per_second << ",\n"
     << indent << "\"items_per_second\": " << r.items_per_second << ",\n"
     << indent << "\"messages_sent\": " << r.messages_sent << ",\n"
     << indent << "\"bgp_updates_sent\": " << r.bgp_updates_sent << ",\n"
     << indent << "\"bgmp_joins_sent\": " << r.bgmp_joins_sent << ",\n"
     << indent << "\"claims_granted\": " << r.claims_granted << ",\n"
     << indent << "\"deliveries\": " << r.deliveries << ",\n"
     << indent << "\"deliveries_batched\": " << r.deliveries_batched << ",\n"
     << indent << "\"grib_entries_total\": " << r.grib_entries_total << ",\n"
     << indent << "\"peak_rss_kib\": " << r.peak_rss_kib << ",\n"
     << indent << "\"state_bytes_per_domain\": " << r.state_bytes_per_domain
     << ",\n"
     << indent << "\"path_full_builds\": " << r.path_full_builds << ",\n"
     << indent << "\"path_nodes_touched\": " << r.path_nodes_touched << ",\n"
     << indent << "\"delivery_hops_mean\": " << r.delivery_hops_mean << ",\n"
     << indent << "\"delivery_stretch\": " << r.delivery_stretch << ",\n"
     << indent << "\"members_total\": " << r.members_total << ",\n";
  if (r.spec.workload.enabled) {
    os << indent << "\"members_peak\": " << r.members_peak << ",\n"
       << indent << "\"workload_joins\": " << r.workload_joins << ",\n"
       << indent << "\"workload_tree_joins\": " << r.workload_tree_joins
       << ",\n"
       << indent << "\"workload_tree_prunes\": " << r.workload_tree_prunes
       << ",\n"
       << indent << "\"workload_edge_load\": " << r.workload_edge_load
       << ",\n"
       << indent << "\"workload_engine_digest\": "
       << r.workload_engine_digest << ",\n";
  }
  if (r.telemetry_measured) {
    os << indent << "\"events_per_second_telemetry\": "
       << r.events_per_second_telemetry << ",\n"
       << indent << "\"telemetry_overhead\": " << r.telemetry_overhead
       << ",\n"
       << indent << "\"telemetry_rib_digest\": " << r.telemetry_rib_digest
       << ",\n"
       << indent << "\"recorder_frames\": " << r.recorder_frames << ",\n"
       << indent << "\"spans_sampled\": " << r.spans_sampled << ",\n";
  }
  os << indent << "\"rib_digest\": " << r.rib_digest << "\n";
}

void write_json(const std::vector<Results>& runs, bool ladder,
                std::ostream& os) {
  if (!ladder) {
    os << "{\n  \"bench\": \"macro_scenario\",\n";
    write_rung(runs.front(), os, "  ");
    os << "}\n";
    return;
  }
  os << "{\n  \"bench\": \"macro_ladder\",\n  \"rungs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    os << "    {\n";
    write_rung(runs[i], os, "      ");
    os << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// Minimal field scraper for our own flat JSON schema — keeps the
// regression check self-contained (no JSON library, no python).
bool scrape(const std::string& text, const std::string& key, double& out) {
  const auto at = text.find('"' + key + '"');
  if (at == std::string::npos) return false;
  const auto colon = text.find(':', at);
  if (colon == std::string::npos) return false;
  out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

// Splits a ladder baseline into its rung objects (brace-matched); a flat
// old-style report is treated as a single rung.
std::vector<std::string> baseline_rungs(const std::string& text) {
  const auto rungs_at = text.find("\"rungs\"");
  if (rungs_at == std::string::npos) return {text};
  std::vector<std::string> out;
  int depth = 0;
  std::size_t open = std::string::npos;
  for (std::size_t i = text.find('[', rungs_at); i < text.size(); ++i) {
    if (text[i] == '{') {
      if (depth++ == 0) open = i;
    } else if (text[i] == '}') {
      if (--depth == 0) out.push_back(text.substr(open, i - open + 1));
    } else if (text[i] == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

bool params_match(const Results& now, const std::string& base) {
  double p = 0.0;
  const auto required = [&](const char* key, std::uint64_t want) {
    return scrape(base, key, p) && static_cast<std::uint64_t>(p) == want;
  };
  // The caps are absent from pre-ladder baselines; absent means 0.
  const auto cap = [&](const char* key, std::uint64_t want) {
    return scrape(base, key, p) ? static_cast<std::uint64_t>(p) == want
                                : want == 0;
  };
  // `threads` is deliberately not matched: execution width never changes
  // the deterministic outputs, so a --threads 4 run checks cleanly
  // against a --threads 1 baseline (that equality is the whole point).
  const workload::Spec& w = now.spec.workload;
  return required("domains", static_cast<std::uint64_t>(now.spec.domains)) &&
         required("groups", static_cast<std::uint64_t>(now.spec.groups)) &&
         required("joins", static_cast<std::uint64_t>(now.spec.joins)) &&
         required("seed", now.spec.seed) &&
         cap("max_tops", static_cast<std::uint64_t>(now.spec.max_tops)) &&
         cap("active_children",
             static_cast<std::uint64_t>(now.spec.active_children)) &&
         cap("flap_pairs", static_cast<std::uint64_t>(now.spec.flap_pairs)) &&
         // Workload keys are cap-style: absent from pre-workload baselines
         // means "workload off", so old baselines keep matching.
         cap("workload", w.enabled ? 1 : 0) &&
         cap("workload_groups",
             w.enabled ? static_cast<std::uint64_t>(w.groups) : 0) &&
         cap("workload_ticks",
             w.enabled ? static_cast<std::uint64_t>(w.ticks()) : 0) &&
         cap("workload_arrivals_milli",
             w.enabled ? static_cast<std::uint64_t>(
                             std::llround(w.arrivals_per_second * 1000.0))
                       : 0);
}

int check_one(const Results& now, const std::string& base, double tolerance,
              double telemetry_budget, double eps_floor) {
  int failures = 0;
  const auto exact = [&](const char* key, std::uint64_t current) {
    double expected = 0.0;
    if (!scrape(base, key, expected)) {
      std::cerr << "macro_scenario: baseline lacks \"" << key << "\"\n";
      ++failures;
      return;
    }
    if (static_cast<double>(current) != expected) {
      std::cerr << "macro_scenario: " << key << " diverged: baseline "
                << static_cast<std::uint64_t>(expected) << ", now "
                << current << "\n";
      ++failures;
    }
  };
  // Deterministic (hardware-independent) quantities: the message economy
  // may grow at most `tolerance` before the check fails.
  const auto bounded = [&](const char* key, std::uint64_t current) {
    double expected = 0.0;
    if (!scrape(base, key, expected)) {
      std::cerr << "macro_scenario: baseline lacks \"" << key << "\"\n";
      ++failures;
      return;
    }
    if (static_cast<double>(current) > expected * (1.0 + tolerance)) {
      std::cerr << "macro_scenario: " << key << " regressed > "
                << tolerance * 100 << "%: baseline "
                << static_cast<std::uint64_t>(expected) << ", now " << current
                << "\n";
      ++failures;
    }
  };
  // Converged state must be reproduced bit-for-bit…
  exact("grib_entries_total", now.grib_entries_total);
  exact("rib_digest", now.rib_digest);
  // …including the realized member population: exact whenever the
  // baseline carries the column (post-workload baselines always do), and
  // the full engine state digest on workload rungs.
  double members_base = 0.0;
  if (now.spec.workload.enabled ||
      scrape(base, "members_total", members_base)) {
    exact("members_total", now.members_total);
  }
  if (now.spec.workload.enabled) {
    exact("workload_engine_digest", now.workload_engine_digest);
  }
  // …while the work done to get there may drift a little under
  // legitimate changes, but not regress past the tolerance.
  bounded("events_run", now.events_run);
  bounded("messages_sent", now.messages_sent);
  bounded("bgp_updates_sent", now.bgp_updates_sent);
  // Wall-clock throughput varies with the host; report always, and gate
  // only when an explicit floor was requested (--eps-floor). The floor is
  // deliberately loose — it exists to catch a scheduler regression giving
  // back a multiple of the ladder-queue win, not to measure the host.
  double base_eps = 0.0;
  if (scrape(base, "events_per_second", base_eps) && base_eps > 0.0) {
    std::cerr << "macro_scenario: " << now.spec.domains << " domains: "
              << now.events_per_second << " events/s vs baseline "
              << base_eps << " (" << (now.events_per_second / base_eps)
              << "x)\n";
    if (eps_floor > 0.0 &&
        now.events_per_second < base_eps * (1.0 - eps_floor)) {
      std::cerr << "macro_scenario: events/s regressed more than "
                << eps_floor * 100 << "% below the committed baseline\n";
      ++failures;
    }
  }
  // The telemetry budget IS gated: both columns run on this host in this
  // process, so their ratio is a property of the code, not the machine.
  if (now.telemetry_measured) {
    if (now.telemetry_overhead > telemetry_budget) {
      std::cerr << "macro_scenario: telemetry overhead "
                << now.telemetry_overhead * 100 << "% exceeds the "
                << telemetry_budget * 100 << "% budget ("
                << now.events_per_second << " -> "
                << now.events_per_second_telemetry << " events/s)\n";
      ++failures;
    } else {
      std::cerr << "macro_scenario: telemetry overhead "
                << now.telemetry_overhead * 100 << "% (budget "
                << telemetry_budget * 100 << "%)\n";
    }
  }
  return failures;
}

int check_against(const std::vector<Results>& runs, const std::string& path,
                  double tolerance, double telemetry_budget,
                  double eps_floor) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "macro_scenario: cannot read baseline " << path << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::vector<std::string> rungs = baseline_rungs(buf.str());

  int failures = 0;
  int matched = 0;
  for (const Results& r : runs) {
    bool found = false;
    for (const std::string& rung : rungs) {
      if (!params_match(r, rung)) continue;
      found = true;
      ++matched;
      failures += check_one(r, rung, tolerance, telemetry_budget, eps_floor);
      break;
    }
    if (!found) {
      std::cerr << "macro_scenario: no baseline rung matches "
                << r.spec.domains << " domains; skipping its "
                   "deterministic checks\n";
    }
  }
  if (matched == 0) {
    std::cerr << "macro_scenario: baseline parameters differ; "
                 "skipping deterministic checks\n";
  }
  if (failures == 0) {
    std::cerr << "macro_scenario: within baseline (" << path << ")\n";
  }
  return failures == 0 ? 0 : 1;
}

/// The committed ladder caps: above 512 domains the backbone stops
/// growing (the MASC sibling mesh is O(tops²)) and only the first 256
/// children source traffic; at or below 512 the legacy shape (and its
/// digests) is preserved.
eval::ScenarioSpec rung_spec(const eval::ScenarioSpec& base, int domains) {
  eval::ScenarioSpec spec = base;
  spec.domains = domains;
  if (domains > 512) {
    spec.max_tops = 64;
    spec.active_children = 256;
    spec.flap_pairs = 2;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  eval::ScenarioSpec spec;
  spec.groups = 32;  // the historical macro default (ladders pass 128)
  std::vector<int> ladder;
  std::string out_path;
  std::string check_path;
  double tolerance = 0.25;
  bool telemetry = false;
  double telemetry_interval = 1.0;
  double span_sample = 0.01;
  double telemetry_budget = 0.05;
  int telemetry_reps = 3;
  double eps_floor = 0.0;
  std::string telemetry_out;
  bool with_workload = false;

  eval::Args args("macro_scenario",
                  "macro benchmark over the full MASC/MAAS/BGP/BGMP "
                  "pipeline, single-size or --ladder");
  args.opt("--domains", &spec.domains, "domain count (single run)");
  args.opt("--groups", &spec.groups, "groups to lease");
  args.opt("--joins", &spec.joins, "member joins per group");
  args.opt("--seed", &spec.seed, "workload seed");
  args.opt("--max-tops", &spec.max_tops,
           "cap the backbone size (0 = domains/8)");
  args.opt("--active-children", &spec.active_children,
           "cap how many children source traffic (0 = all)");
  args.opt("--flap-pairs", &spec.flap_pairs,
           "cap the ring pairs flapped in phase 3 (0 = all)");
  args.opt("--threads", &spec.threads,
           "execution width (1 = serial; >1 = partition-sharded parallel "
           "executor, byte-identical schedule)");
  args.opt("--ladder", &ladder,
           "run one rung per domain count, ascending (csv); rungs > 512 "
           "domains apply the scale caps");
  args.opt("--out", &out_path, "also write the JSON report here");
  args.opt("--check", &check_path, "compare against this baseline JSON");
  args.opt("--tolerance", &tolerance,
           "allowed growth of the deterministic work counters");
  args.flag("--telemetry", &telemetry,
            "run each rung a second time with the flight recorder and span "
            "sampling attached; report the events/s overhead column");
  args.opt("--telemetry-interval", &telemetry_interval,
           "recorder frame interval in simulated seconds");
  args.opt("--span-sample", &span_sample,
           "head-based span sampling rate for the telemetry column");
  args.opt("--telemetry-budget", &telemetry_budget,
           "max relative events/s overhead --check allows for telemetry");
  args.opt("--telemetry-reps", &telemetry_reps,
           "interleaved off/on pairs per rung; overhead is the median "
           "pair estimate (ladder rungs clamp this to >= 3)");
  args.opt("--eps-floor", &eps_floor,
           "with --check: fail if events/s drops more than this fraction "
           "below the committed baseline (0 = report only)");
  args.opt("--telemetry-out", &telemetry_out,
           "dump per-rung <prefix>-<domains>.{recorder.jsonl,spans.jsonl,"
           "critical_path.json} from the telemetry run");
  args.flag("--workload", &with_workload,
            "run the aggregate end-host layer (Zipf/Poisson membership "
            "churn) between the join and flap phases; adds the "
            "members_total and workload_* columns");
  args.opt("--workload-groups", &spec.workload.groups,
           "workload: multicast groups to lease");
  args.opt("--workload-days", &spec.workload.sim_days,
           "workload: simulated horizon in days");
  args.opt("--workload-tick", &spec.workload.tick_seconds,
           "workload: churn tick in simulated seconds");
  args.opt("--workload-arrivals", &spec.workload.arrivals_per_second,
           "workload: aggregate member arrivals per second");
  args.opt("--workload-lifetime", &spec.workload.mean_lifetime_seconds,
           "workload: mean membership lifetime in seconds");
  if (!args.parse(argc, argv)) return args.exit_code();
  spec.workload.enabled = with_workload;

  eval::TelemetrySpec telemetry_spec;
  telemetry_spec.recorder_interval_seconds = telemetry_interval;
  telemetry_spec.span_sample_rate = span_sample;
  // A single off/on pair per rung is below wall-clock noise (the committed
  // ladder once carried *negative* overheads) — ladder rungs are what the
  // CI budget gate reads, so force at least 3 median-filtered pairs there.
  if (!ladder.empty() && telemetry && telemetry_reps < 3) {
    std::cerr << "macro_scenario: raising --telemetry-reps to 3 for ladder "
                 "rungs (median filter needs interleaved pairs)\n";
    telemetry_reps = 3;
  }
  const auto run_one = [&](const eval::ScenarioSpec& s) {
    return telemetry
               ? run_with_telemetry_column(s, telemetry_spec, telemetry_out,
                                           telemetry_reps)
               : run_scenario(s);
  };

  std::vector<Results> runs;
  if (ladder.empty()) {
    runs.push_back(run_one(spec));
  } else {
    // Ascending keeps per-rung ru_maxrss meaningful (it is monotonic).
    std::vector<int> sizes = ladder;
    std::sort(sizes.begin(), sizes.end());
    for (const int domains : sizes) {
      const eval::ScenarioSpec rung = rung_spec(spec, domains);
      std::cerr << "macro_scenario: rung " << domains << " domains (tops="
                << rung.effective_tops() << ", active="
                << (rung.active_children > 0 ? rung.active_children
                                             : domains)
                << ")\n";
      runs.push_back(run_one(rung));
    }
  }

  write_json(runs, !ladder.empty(), std::cout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "macro_scenario: cannot write " << out_path << "\n";
      return 2;
    }
    write_json(runs, !ladder.empty(), out);
  }
  if (!check_path.empty()) {
    return check_against(runs, check_path, tolerance, telemetry_budget,
                         eps_floor);
  }
  return 0;
}
