// Ablation A3: tree cost beyond path length (§5.2's efficiency argument).
//
// For the Figure-4 topology and group-size sweep, reports the number of
// distinct inter-domain links each tree type occupies for one group
// (bandwidth footprint), normalized to the shortest-path tree. The
// bidirectional tree's footprint advantage over per-source shortest-path
// state is the paper's case for shared trees; the hybrid's extra branches
// quantify what §5.3's optimization costs in links.
//
// Usage: ablation_treecost [--nodes N] [--trials N] [--seed N]
#include <cstdio>
#include <set>
#include <vector>

#include "eval/args.hpp"
#include "eval/tree_model.hpp"
#include "net/rng.hpp"
#include "topology/generators.hpp"

int main(int argc, char** argv) {
  int nodes = 3326;
  int trials = 10;
  std::uint64_t seed = 1998;
  eval::Args args("ablation_treecost",
                  "Ablation A3: tree bandwidth footprint per group");
  args.opt("--nodes", &nodes, "topology size (domains)");
  args.opt("--trials", &trials, "trials per point");
  args.opt("--seed", &seed, "topology/receiver-draw seed");
  if (!args.parse(argc, argv)) return args.exit_code();

  net::Rng rng(seed);
  const topology::Graph graph =
      topology::make_as_level(static_cast<std::size_t>(nodes), 2, rng);

  std::printf(
      "== Ablation A3: tree footprint (links occupied per group) ==\n"
      "topology: %zu domains, %d trials/point\n\n",
      graph.node_count(), trials);
  std::printf("%9s %10s %12s %12s %12s\n", "receivers", "spt", "unidir",
              "bidir", "hybrid");
  for (const std::size_t size : {2u, 5u, 10u, 20u, 50u, 100u, 200u, 500u}) {
    if (size >= graph.node_count()) break;
    double spt = 0.0;
    double uni = 0.0;
    double bidir = 0.0;
    double hybrid = 0.0;
    for (int t = 0; t < trials; ++t) {
      eval::GroupScenario scenario;
      std::set<topology::NodeId> receivers;
      while (receivers.size() < size) {
        receivers.insert(
            static_cast<topology::NodeId>(rng.index(graph.node_count())));
      }
      scenario.receivers.assign(receivers.begin(), receivers.end());
      scenario.root =
          scenario.receivers[rng.index(scenario.receivers.size())];
      scenario.source =
          static_cast<topology::NodeId>(rng.index(graph.node_count()));
      const eval::TreeModel model(graph, scenario);
      spt += static_cast<double>(
          model.tree_edges(eval::TreeType::kShortestPath));
      uni += static_cast<double>(
          model.tree_edges(eval::TreeType::kUnidirectional));
      bidir += static_cast<double>(
          model.tree_edges(eval::TreeType::kBidirectional));
      hybrid +=
          static_cast<double>(model.tree_edges(eval::TreeType::kHybrid));
    }
    const double n = trials;
    std::printf("%9zu %10.1f %12.1f %12.1f %12.1f\n", size, spt / n,
                uni / n, bidir / n, hybrid / n);
  }
  // -- traffic concentration (§5.3) ---------------------------------------
  // A conferencing workload: every member sends one packet; report the
  // hottest link. Shared trees concentrate traffic on tree links (each
  // packet crosses every tree edge); the paper argues the sparse
  // inter-domain topology keeps this acceptable.
  std::printf(
      "\n== traffic concentration (all %d-member conferences, max/mean "
      "link load) ==\n",
      0);
  std::printf("%9s | %11s | %11s | %11s | %11s\n", "members", "spt",
              "unidir", "bidir", "hybrid");
  for (const std::size_t size : {5u, 10u, 20u, 50u}) {
    eval::GroupScenario base;
    std::set<topology::NodeId> members;
    while (members.size() < size) {
      members.insert(
          static_cast<topology::NodeId>(rng.index(graph.node_count())));
    }
    const std::vector<topology::NodeId> member_list(members.begin(),
                                                    members.end());
    const topology::NodeId root = member_list[rng.index(member_list.size())];
    std::printf("%9zu |", size);
    for (const eval::TreeType type :
         {eval::TreeType::kShortestPath, eval::TreeType::kUnidirectional,
          eval::TreeType::kBidirectional, eval::TreeType::kHybrid}) {
      const eval::LinkLoad load =
          eval::traffic_concentration(graph, root, member_list, type);
      std::printf(" %4d / %4.1f |", load.max_load, load.mean_load);
    }
    std::printf("\n");
  }

  // -- §6 comparison: HDVMRP ------------------------------------------------
  // HDVMRP "floods data packets to the boundary routers of all regions"
  // and keeps per-(source, group) state at every boundary router; BGMP
  // holds state only on the shared tree.
  std::printf(
      "\n== vs HDVMRP (§6): first-packet flood cost and forwarding state "
      "==\n");
  std::printf("%9s | %16s %16s | %18s %18s\n", "members", "hdvmrp flood",
              "bgmp tree links", "hdvmrp state rows", "bgmp state rows");
  for (const std::size_t size : {10u, 50u, 200u}) {
    eval::GroupScenario scenario;
    std::set<topology::NodeId> receivers;
    while (receivers.size() < size) {
      receivers.insert(
          static_cast<topology::NodeId>(rng.index(graph.node_count())));
    }
    scenario.receivers.assign(receivers.begin(), receivers.end());
    scenario.root = scenario.receivers[rng.index(size)];
    scenario.source =
        static_cast<topology::NodeId>(rng.index(graph.node_count()));
    const eval::TreeModel model(graph, scenario);
    // HDVMRP: every inter-domain link carries the first packet; every
    // domain's boundary holds (S,G) state afterwards. BGMP: the packet
    // touches only tree+injection links; only on-tree domains hold state.
    const std::size_t hdvmrp_flood = graph.edge_count();
    const std::size_t bgmp_links =
        model.tree_edges(eval::TreeType::kBidirectional);
    const std::size_t hdvmrp_state = graph.node_count();  // per (S,G)
    const std::size_t bgmp_state = model.shared_tree_nodes().size();
    std::printf("%9zu | %16zu %16zu | %18zu %18zu\n", size, hdvmrp_flood,
                bgmp_links, hdvmrp_state, bgmp_state);
  }
  std::printf(
      "\nNote: per-source SPTs multiply the footprint by the number of\n"
      "senders, while the shared-tree types serve every sender from one\n"
      "tree (plus injection paths) — §3's forwarding-state scaling goal.\n");
  return 0;
}
