// Ablation A1: the MASC claim-algorithm design choices of §4.3.3.
//
// Sweeps, at reduced Figure-2 scale (configurable):
//   * claim strategy: the paper's random-block/first-sub-prefix vs
//     deterministic first-fit vs random-block/random-sub-prefix;
//   * expansion policy: the paper's double-or-new-prefix rule vs
//     double-only vs new-prefix-only;
//   * occupancy target: 50/65/75/85/95 %;
//   * the prefixes-per-domain goal: 1/2/3/4.
//
// Reports steady-state utilization and G-RIB size for each variant — the
// trade-off the paper calls "challenging … to achieve both aggregation
// and efficient utilization".
//
// Usage: ablation_claim [--days N] [--tops N] [--children N] [--seed N]
#include <cstdio>

#include "eval/args.hpp"
#include "eval/masc_sim.hpp"

namespace {

struct Row {
  const char* label;
  eval::MascSimSample steady;
  int failures;
};

Row run(const char* label, const eval::MascSimParams& params) {
  const eval::MascSimResult result = eval::run_masc_sim(params);
  return Row{label, result.steady_state(params.horizon.to_days() / 2.0),
             result.allocation_failures};
}

void print_header(const char* sweep) {
  std::printf("\n-- %s --\n", sweep);
  std::printf("%-24s %12s %10s %9s %9s\n", "variant", "utilization",
              "grib_avg", "grib_max", "failures");
}

void print_row(const Row& row) {
  std::printf("%-24s %12.3f %10.1f %9zu %9d\n", row.label,
              row.steady.utilization, row.steady.grib_average,
              row.steady.grib_max, row.failures);
}

}  // namespace

int main(int argc, char** argv) {
  int days = 300;
  int tops = 20;
  int children = 20;
  std::uint64_t seed = 7;
  eval::Args args("ablation_claim",
                  "Ablation A1: MASC claim-algorithm design variants");
  args.opt("--days", &days, "simulated days");
  args.opt("--tops", &tops, "top-level domains");
  args.opt("--children", &children, "children per top-level domain");
  args.opt("--seed", &seed, "simulation seed");
  if (!args.parse(argc, argv)) return args.exit_code();

  eval::MascSimParams base;
  base.top_level_domains = static_cast<std::size_t>(tops);
  base.children_per_top = static_cast<std::size_t>(children);
  base.horizon = net::SimTime::days(days);
  base.seed = seed;
  std::printf(
      "== Ablation A1: MASC claim-algorithm variants "
      "(%zu x %zu domains, %lld days) ==\n",
      base.top_level_domains, base.children_per_top,
      static_cast<long long>(base.horizon.to_days()));

  print_header("claim strategy (where a new prefix lands)");
  {
    eval::MascSimParams p = base;
    p.pool.strategy = masc::ClaimStrategy::kRandomBlockFirstSub;
    print_row(run("random-block/first-sub*", p));
    p.pool.strategy = masc::ClaimStrategy::kFirstFit;
    print_row(run("first-fit", p));
    p.pool.strategy = masc::ClaimStrategy::kRandomBlockRandomSub;
    print_row(run("random-block/random-sub", p));
  }

  print_header("expansion policy");
  {
    eval::MascSimParams p = base;
    p.pool.expansion = masc::ExpansionPolicy::kPaper;
    print_row(run("double-or-new-prefix*", p));
    p.pool.expansion = masc::ExpansionPolicy::kDoubleOnly;
    print_row(run("double-only", p));
    p.pool.expansion = masc::ExpansionPolicy::kNewPrefixOnly;
    print_row(run("new-prefix-only", p));
  }

  print_header("occupancy target");
  for (const int pct : {50, 65, 75, 85, 95}) {
    eval::MascSimParams p = base;
    p.pool.occupancy_target = pct / 100.0;
    char label[32];
    std::snprintf(label, sizeof label, "%d%%%s", pct,
                  pct == 75 ? "*" : "");
    print_row(run(label, p));
  }

  print_header("prefixes-per-domain goal");
  for (const int goal : {1, 2, 3, 4}) {
    eval::MascSimParams p = base;
    p.pool.max_prefixes = goal;
    char label[32];
    std::snprintf(label, sizeof label, "goal=%d%s", goal,
                  goal == 2 ? "*" : "");
    print_row(run(label, p));
  }

  std::printf("\n(* = the paper's choice)\n");
  return 0;
}
