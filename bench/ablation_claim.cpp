// Ablation A1: the MASC claim-algorithm design choices of §4.3.3.
//
// Sweeps, at reduced Figure-2 scale (configurable):
//   * claim strategy: the paper's random-block/first-sub-prefix vs
//     deterministic first-fit vs random-block/random-sub-prefix;
//   * expansion policy: the paper's double-or-new-prefix rule vs
//     double-only vs new-prefix-only;
//   * occupancy target: 50/65/75/85/95 %;
//   * the prefixes-per-domain goal: 1/2/3/4.
//
// Reports steady-state utilization and G-RIB size for each variant — the
// trade-off the paper calls "challenging … to achieve both aggregation
// and efficient utilization".
//
// Usage: ablation_claim [--days N] [--tops N] [--children N] [--seed N]
#include <cstdio>
#include <cstring>

#include "eval/masc_sim.hpp"

namespace {

long long arg_value(int argc, char** argv, const char* name,
                    long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

struct Row {
  const char* label;
  eval::MascSimSample steady;
  int failures;
};

eval::MascSimParams base_params(int argc, char** argv) {
  eval::MascSimParams p;
  p.top_level_domains =
      static_cast<std::size_t>(arg_value(argc, argv, "--tops", 20));
  p.children_per_top =
      static_cast<std::size_t>(arg_value(argc, argv, "--children", 20));
  p.horizon = net::SimTime::days(arg_value(argc, argv, "--days", 300));
  p.seed = static_cast<std::uint64_t>(arg_value(argc, argv, "--seed", 7));
  return p;
}

Row run(const char* label, const eval::MascSimParams& params) {
  const eval::MascSimResult result = eval::run_masc_sim(params);
  return Row{label, result.steady_state(params.horizon.to_days() / 2.0),
             result.allocation_failures};
}

void print_header(const char* sweep) {
  std::printf("\n-- %s --\n", sweep);
  std::printf("%-24s %12s %10s %9s %9s\n", "variant", "utilization",
              "grib_avg", "grib_max", "failures");
}

void print_row(const Row& row) {
  std::printf("%-24s %12.3f %10.1f %9zu %9d\n", row.label,
              row.steady.utilization, row.steady.grib_average,
              row.steady.grib_max, row.failures);
}

}  // namespace

int main(int argc, char** argv) {
  const eval::MascSimParams base = base_params(argc, argv);
  std::printf(
      "== Ablation A1: MASC claim-algorithm variants "
      "(%zu x %zu domains, %lld days) ==\n",
      base.top_level_domains, base.children_per_top,
      static_cast<long long>(base.horizon.to_days()));

  print_header("claim strategy (where a new prefix lands)");
  {
    eval::MascSimParams p = base;
    p.pool.strategy = masc::ClaimStrategy::kRandomBlockFirstSub;
    print_row(run("random-block/first-sub*", p));
    p.pool.strategy = masc::ClaimStrategy::kFirstFit;
    print_row(run("first-fit", p));
    p.pool.strategy = masc::ClaimStrategy::kRandomBlockRandomSub;
    print_row(run("random-block/random-sub", p));
  }

  print_header("expansion policy");
  {
    eval::MascSimParams p = base;
    p.pool.expansion = masc::ExpansionPolicy::kPaper;
    print_row(run("double-or-new-prefix*", p));
    p.pool.expansion = masc::ExpansionPolicy::kDoubleOnly;
    print_row(run("double-only", p));
    p.pool.expansion = masc::ExpansionPolicy::kNewPrefixOnly;
    print_row(run("new-prefix-only", p));
  }

  print_header("occupancy target");
  for (const int pct : {50, 65, 75, 85, 95}) {
    eval::MascSimParams p = base;
    p.pool.occupancy_target = pct / 100.0;
    char label[32];
    std::snprintf(label, sizeof label, "%d%%%s", pct,
                  pct == 75 ? "*" : "");
    print_row(run(label, p));
  }

  print_header("prefixes-per-domain goal");
  for (const int goal : {1, 2, 3, 4}) {
    eval::MascSimParams p = base;
    p.pool.max_prefixes = goal;
    char label[32];
    std::snprintf(label, sizeof label, "goal=%d%s", goal,
                  goal == 2 ? "*" : "");
    print_row(run(label, p));
  }

  std::printf("\n(* = the paper's choice)\n");
  return 0;
}
