// M3: parallel parameter sweep over the full simulation pipeline. Fans a
// (scenario × domain-count × seed) grid across a work-stealing thread
// pool (src/eval/sweep.hpp); every cell is an isolated core::Internet, so
// per-cell results are byte-identical at any --threads value. Emits one
// JSON report: per-cell rib digests and work counters plus a merged
// metrics snapshot with cross-run histogram quantiles.
//
// Usage:
//   sweep_scenario [--threads N] [--scenarios claim,join,flap]
//                  [--domains 16,32,48] [--seeds 1,2,3,4]
//                  [--groups G] [--joins J] [--out FILE] [--smoke]
//
// --smoke shrinks the grid to a seconds-long run for CI (the TSan job
// drives it with --threads 4). Exit code is nonzero if any cell failed.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/sweep.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<int> parse_ints(const std::string& text) {
  std::vector<int> out;
  for (const std::string& s : split_csv(text)) out.push_back(std::atoi(s.c_str()));
  return out;
}

std::vector<std::uint64_t> parse_seeds(const std::string& text) {
  std::vector<std::uint64_t> out;
  for (const std::string& s : split_csv(text)) {
    out.push_back(std::strtoull(s.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 1;
  int groups = 0;
  int joins = 4;
  std::vector<std::string> scenarios = eval::scenario_names();
  std::vector<int> domains = {16, 32, 48};
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "sweep_scenario: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--scenarios") {
      scenarios = split_csv(next());
    } else if (arg == "--domains") {
      domains = parse_ints(next());
    } else if (arg == "--seeds") {
      seeds = parse_seeds(next());
    } else if (arg == "--groups") {
      groups = std::atoi(next());
    } else if (arg == "--joins") {
      joins = std::atoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--smoke") {
      domains = {8, 16};
      seeds = {1, 2};
    } else {
      std::cerr << "sweep_scenario: unknown flag " << arg << "\n";
      return 2;
    }
  }

  eval::SweepConfig config;
  config.threads = threads;
  config.cells = eval::make_grid(scenarios, domains, seeds);
  for (eval::SweepCell& cell : config.cells) {
    cell.groups = groups;
    cell.joins = joins;
  }

  eval::SweepResult result;
  try {
    result = eval::run_sweep(config);
  } catch (const std::exception& e) {
    std::cerr << "sweep_scenario: " << e.what() << "\n";
    return 2;
  }

  result.write_json(std::cout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "sweep_scenario: cannot write " << out_path << "\n";
      return 2;
    }
    result.write_json(out);
  }

  if (const std::size_t failed = result.failed_cells(); failed > 0) {
    for (const eval::SweepCellResult& c : result.cells) {
      if (!c.error.empty()) {
        std::cerr << "sweep_scenario: cell " << c.cell.scenario << "/"
                  << c.cell.domains << "/" << c.cell.seed << " failed: "
                  << c.error << "\n";
      }
    }
    return 1;
  }
  std::cerr << "sweep_scenario: " << result.cells.size() << " cells, "
            << result.threads << " threads, " << result.wall_seconds
            << "s\n";
  return 0;
}
