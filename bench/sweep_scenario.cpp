// M3: parallel parameter sweep over the full simulation pipeline. Fans a
// (scenario × domain-count × seed) grid across a work-stealing thread
// pool (src/eval/sweep.hpp); every cell is an isolated core::Internet, so
// per-cell results are byte-identical at any --threads value. Emits one
// JSON report: per-cell rib digests and work counters plus a merged
// metrics snapshot with cross-run histogram quantiles.
//
// Usage:
//   sweep_scenario [--threads N] [--cell-threads N]
//                  [--scenarios claim,join,flap,workload]
//                  [--domains 16,32,48] [--seeds 1,2,3,4]
//                  [--groups G] [--joins J] [--out FILE] [--smoke]
//                  [--telemetry] [--telemetry-interval SEC]
//                  [--span-sample RATE] [--telemetry-dir DIR]
//
// --smoke shrinks the grid to a seconds-long run for CI (the TSan job
// drives it with --threads 4). Exit code is nonzero if any cell failed.
// --telemetry gives every cell its own flight recorder + span sampler on
// its isolated Internet; per-cell frame/span counts land in the report
// (byte-identical at any --threads), and --telemetry-dir dumps the
// per-cell JSONL artifacts into an existing directory.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "eval/args.hpp"
#include "eval/sweep.hpp"

int main(int argc, char** argv) {
  int threads = 1;
  int cell_threads = 1;
  int groups = 0;
  int joins = 4;
  std::vector<std::string> scenarios = eval::scenario_names();
  std::vector<int> domains = {16, 32, 48};
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  std::string out_path;
  bool smoke = false;
  bool telemetry = false;
  double telemetry_interval = 1.0;
  double span_sample = 0.01;
  std::string telemetry_dir;

  eval::Args args("sweep_scenario",
                  "parallel deterministic (scenario × domains × seed) sweep");
  args.opt("--threads", &threads, "worker threads (one cell per worker)");
  args.opt("--cell-threads", &cell_threads,
           "execution width inside each cell (byte-identical digests; "
           "useful when the grid is one big cell)");
  args.opt("--scenarios", &scenarios, "scenario names (csv)");
  args.opt("--domains", &domains, "domain counts (csv)");
  args.opt("--seeds", &seeds, "seeds (csv)");
  args.opt("--groups", &groups, "groups per cell (0 = domains/4)");
  args.opt("--joins", &joins, "member joins per group");
  args.opt("--out", &out_path, "also write the JSON report here");
  args.flag("--smoke", &smoke, "shrink the grid to a seconds-long CI run");
  args.flag("--telemetry", &telemetry,
            "attach a per-cell flight recorder + span sampler");
  args.opt("--telemetry-interval", &telemetry_interval,
           "recorder frame interval in simulated seconds");
  args.opt("--span-sample", &span_sample, "head-based span sampling rate");
  args.opt("--telemetry-dir", &telemetry_dir,
           "dump per-cell recorder/span JSONL into this directory");
  if (!args.parse(argc, argv)) return args.exit_code();
  if (smoke) {
    domains = {8, 16};
    seeds = {1, 2};
  }

  eval::SweepConfig config;
  config.threads = threads;
  config.cell_threads = cell_threads;
  if (telemetry || !telemetry_dir.empty()) {
    config.telemetry.recorder_interval_seconds = telemetry_interval;
    config.telemetry.span_sample_rate = span_sample;
    config.telemetry_dir = telemetry_dir;
  }
  config.cells = eval::make_grid(scenarios, domains, seeds);
  for (eval::SweepCell& cell : config.cells) {
    cell.groups = groups;
    cell.joins = joins;
  }

  eval::SweepResult result;
  try {
    result = eval::run_sweep(config);
  } catch (const std::exception& e) {
    std::cerr << "sweep_scenario: " << e.what() << "\n";
    return 2;
  }

  result.write_json(std::cout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "sweep_scenario: cannot write " << out_path << "\n";
      return 2;
    }
    result.write_json(out);
  }

  if (const std::size_t failed = result.failed_cells(); failed > 0) {
    for (const eval::SweepCellResult& c : result.cells) {
      if (!c.error.empty()) {
        std::cerr << "sweep_scenario: cell " << c.cell.scenario << "/"
                  << c.cell.domains << "/" << c.cell.seed << " failed: "
                  << c.error << "\n";
      }
    }
    return 1;
  }
  std::cerr << "sweep_scenario: " << result.cells.size() << " cells, "
            << result.threads << " threads, " << result.wall_seconds
            << "s\n";
  return 0;
}
