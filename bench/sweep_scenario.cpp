// M3: parallel parameter sweep over the full simulation pipeline. Fans a
// (scenario × domain-count × seed) grid across a work-stealing thread
// pool (src/eval/sweep.hpp); every cell is an isolated core::Internet, so
// per-cell results are byte-identical at any --threads value. Emits one
// JSON report: per-cell rib digests and work counters plus a merged
// metrics snapshot with cross-run histogram quantiles.
//
// Usage:
//   sweep_scenario [--threads N] [--scenarios claim,join,flap]
//                  [--domains 16,32,48] [--seeds 1,2,3,4]
//                  [--groups G] [--joins J] [--out FILE] [--smoke]
//
// --smoke shrinks the grid to a seconds-long run for CI (the TSan job
// drives it with --threads 4). Exit code is nonzero if any cell failed.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "eval/args.hpp"
#include "eval/sweep.hpp"

int main(int argc, char** argv) {
  int threads = 1;
  int groups = 0;
  int joins = 4;
  std::vector<std::string> scenarios = eval::scenario_names();
  std::vector<int> domains = {16, 32, 48};
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  std::string out_path;
  bool smoke = false;

  eval::Args args("sweep_scenario",
                  "parallel deterministic (scenario × domains × seed) sweep");
  args.opt("--threads", &threads, "worker threads");
  args.opt("--scenarios", &scenarios, "scenario names (csv)");
  args.opt("--domains", &domains, "domain counts (csv)");
  args.opt("--seeds", &seeds, "seeds (csv)");
  args.opt("--groups", &groups, "groups per cell (0 = domains/4)");
  args.opt("--joins", &joins, "member joins per group");
  args.opt("--out", &out_path, "also write the JSON report here");
  args.flag("--smoke", &smoke, "shrink the grid to a seconds-long CI run");
  if (!args.parse(argc, argv)) return args.exit_code();
  if (smoke) {
    domains = {8, 16};
    seeds = {1, 2};
  }

  eval::SweepConfig config;
  config.threads = threads;
  config.cells = eval::make_grid(scenarios, domains, seeds);
  for (eval::SweepCell& cell : config.cells) {
    cell.groups = groups;
    cell.joins = joins;
  }

  eval::SweepResult result;
  try {
    result = eval::run_sweep(config);
  } catch (const std::exception& e) {
    std::cerr << "sweep_scenario: " << e.what() << "\n";
    return 2;
  }

  result.write_json(std::cout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "sweep_scenario: cannot write " << out_path << "\n";
      return 2;
    }
    result.write_json(out);
  }

  if (const std::size_t failed = result.failed_cells(); failed > 0) {
    for (const eval::SweepCellResult& c : result.cells) {
      if (!c.error.empty()) {
        std::cerr << "sweep_scenario: cell " << c.cell.scenario << "/"
                  << c.cell.domains << "/" << c.cell.seed << " failed: "
                  << c.error << "\n";
      }
    }
    return 1;
  }
  std::cerr << "sweep_scenario: " << result.cells.size() << " cells, "
            << result.threads << " threads, " << result.wall_seconds
            << "s\n";
  return 0;
}
