// scenario_runner — drive the MASC/BGMP architecture from a scenario
// script, for exploring topologies and failure cases without writing C++.
//
// Usage: scenario_runner [script.msc] [--metrics-out FILE]
//                        [--metrics-every SECONDS] [--metrics-jsonl FILE]
//                        [--span-out FILE] [--profile-steps]
//                        [--trace-out FILE] [--trace-level info|debug]
//
// Runs a built-in demo when no script is given. --metrics-out writes the
// end-of-run metrics snapshot (every counter, gauge and histogram the
// stack registered, stamped with the final simulation time) as JSON.
// --metrics-every samples a snapshot every SECONDS of simulated time while
// the scenario settles, appending each as one line of the JSONL time
// series --metrics-jsonl (default metrics.jsonl). --span-out streams
// causal message spans (one JSON object per send/deliver/hold/drop,
// keyed by trace id) for flight-recorder analysis. --profile-steps
// records wall-clock event-handler durations into per-tag
// sim.step_wall_seconds.* histograms. --trace-out streams structured
// JSONL trace records; --trace-level raises the trace level (default off;
// info also prints to stderr).
//
// Script language (one command per line, '#' comments):
//
//   domain <name> [migp=dvmrp|pim-dm|pim-sm|cbt|mospf] [borders=N]
//   link <a> <b> [rel=lateral|customer|provider] [aborder=N] [bborder=N]
//   masc-parent <child> <parent>        masc-siblings <a> <b>
//   spaces <domain>                     # top level: claim from 224/4
//   announce <domain>                   # originate its unicast prefix
//   request <domain> <addresses>        # MASC space request
//   originate <domain> <prefix>         # inject a group range directly
//   settle                              # run simulated time to quiescence
//   join <domain> <group> [router]      leave <domain> <group> [router]
//   send <domain> <group>               # one packet from a host
//   branch <domain> <source-domain> <group>
//   link-down <a> <b>                   link-up <a> <b>
//   show-tree <group>                   show-grib <domain>
//   show-pool <domain>
//   expect <domain> <copies> [hops]     # assert on the last send
//
// `rel` is the relationship of <b> as seen from <a> ("customer" = b is a's
// customer). Exits non-zero on a failed `expect` — usable as a test.
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "core/internet.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace {

using core::Domain;
using core::Group;

struct Scenario {
  core::Internet net;
  std::map<std::string, Domain*> domains;
  std::map<const Domain*, std::vector<int>> last_send;
  bgp::DomainId next_id = 1;
  int failures = 0;
  /// --metrics-every: snapshot period in simulated time (0 = off) and the
  /// JSONL stream the periodic snapshots append to.
  net::SimTime metrics_every = net::SimTime::nanoseconds(0);
  std::ostream* metrics_series = nullptr;
  net::SimTime next_sample = net::SimTime::nanoseconds(0);

  Scenario() {
    net.set_delivery_observer([this](const core::Delivery& d) {
      last_send[d.domain].push_back(d.hops);
    });
  }

  Domain& domain(const std::string& name) {
    const auto it = domains.find(name);
    if (it == domains.end()) {
      throw std::runtime_error("unknown domain '" + name + "'");
    }
    return *it->second;
  }

  /// Runs to quiescence; with --metrics-every active, pauses on the
  /// sampling grid and appends a snapshot line per period crossed.
  void settle() {
    if (metrics_every.ns() <= 0 || metrics_series == nullptr) {
      net.settle();
      return;
    }
    if (next_sample <= net.events().now()) {
      next_sample = net.events().now() + metrics_every;
    }
    while (!net.events().empty()) {
      net.run_until(next_sample);
      net.metrics_snapshot().write_jsonl(*metrics_series);
      next_sample = next_sample + metrics_every;
    }
  }
};

std::map<std::string, std::string> keyword_args(
    const std::vector<std::string>& words, std::size_t from) {
  std::map<std::string, std::string> out;
  for (std::size_t i = from; i < words.size(); ++i) {
    const auto eq = words[i].find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("expected key=value, got '" + words[i] + "'");
    }
    out[words[i].substr(0, eq)] = words[i].substr(eq + 1);
  }
  return out;
}

bgp::Relationship parse_rel(const std::string& text) {
  if (text == "lateral") return bgp::Relationship::kLateral;
  if (text == "customer") return bgp::Relationship::kCustomer;
  if (text == "provider") return bgp::Relationship::kProvider;
  throw std::runtime_error("bad relationship '" + text + "'");
}

std::string target_name(const bgmp::TargetKey& t) {
  return t.kind == bgmp::TargetKey::Kind::kMigp ? "MIGP" : t.peer->name();
}

void run_command(Scenario& s, const std::vector<std::string>& words) {
  const std::string& cmd = words[0];
  if (cmd == "domain") {
    const auto kw = keyword_args(words, 2);
    Domain::Config config;
    config.id = s.next_id++;
    config.name = words[1];
    if (const auto it = kw.find("migp"); it != kw.end()) {
      config.protocol = migp::parse_protocol(it->second);
    }
    if (const auto it = kw.find("borders"); it != kw.end()) {
      const auto n = static_cast<std::size_t>(std::stoul(it->second));
      topology::Graph mesh(n);
      for (topology::NodeId i = 0; i < n; ++i) {
        for (topology::NodeId j = i + 1; j < n; ++j) mesh.add_edge(i, j);
      }
      config.internal_graph = std::move(mesh);
      config.borders.clear();
      for (std::size_t i = 0; i < n; ++i) {
        config.borders.push_back(static_cast<migp::RouterId>(i));
      }
    }
    s.domains[words[1]] = &s.net.add_domain(std::move(config));
  } else if (cmd == "link") {
    const auto kw = keyword_args(words, 3);
    bgp::Relationship rel = bgp::Relationship::kLateral;
    std::size_t aborder = 0;
    std::size_t bborder = 0;
    if (const auto it = kw.find("rel"); it != kw.end()) {
      rel = parse_rel(it->second);
    }
    if (const auto it = kw.find("aborder"); it != kw.end()) {
      aborder = std::stoul(it->second);
    }
    if (const auto it = kw.find("bborder"); it != kw.end()) {
      bborder = std::stoul(it->second);
    }
    s.net.link(s.domain(words[1]), s.domain(words[2]), rel, aborder,
               bborder);
  } else if (cmd == "masc-parent") {
    s.net.masc_parent(s.domain(words[1]), s.domain(words[2]));
  } else if (cmd == "masc-siblings") {
    s.net.masc_siblings(s.domain(words[1]), s.domain(words[2]));
  } else if (cmd == "spaces") {
    s.domain(words[1]).masc_node().set_spaces({net::multicast_space()});
  } else if (cmd == "announce") {
    s.domain(words[1]).announce_unicast();
  } else if (cmd == "request") {
    s.domain(words[1]).masc_node().request_space(std::stoull(words[2]));
  } else if (cmd == "originate") {
    s.domain(words[1]).originate_group_range(net::Prefix::parse(words[2]));
  } else if (cmd == "settle") {
    s.settle();
  } else if (cmd == "join" || cmd == "leave") {
    const Group group = net::Ipv4Addr::parse(words[2]);
    const migp::RouterId at =
        words.size() > 3 ? static_cast<migp::RouterId>(std::stoul(words[3]))
                         : 0;
    if (cmd == "join") {
      s.domain(words[1]).host_join(group, at);
    } else {
      s.domain(words[1]).host_leave(group, at);
    }
  } else if (cmd == "send") {
    s.last_send.clear();
    s.domain(words[1]).send(net::Ipv4Addr::parse(words[2]));
    s.settle();
  } else if (cmd == "branch") {
    s.domain(words[1]).build_source_branch(
        s.domain(words[2]).host_address(1), net::Ipv4Addr::parse(words[3]));
  } else if (cmd == "link-down" || cmd == "link-up") {
    s.net.set_link_state(s.domain(words[1]), s.domain(words[2]),
                         cmd == "link-up");
  } else if (cmd == "show-tree") {
    const Group group = net::Ipv4Addr::parse(words[1]);
    std::cout << "(*,G) entries for " << words[1] << ":\n";
    for (const auto& [name, domain] : s.domains) {
      for (std::size_t b = 0; b < domain->border_count(); ++b) {
        const bgmp::GroupEntry* entry =
            domain->bgmp_router(b).star_entry(group);
        if (entry == nullptr) continue;
        std::cout << "  " << domain->bgmp_router(b).name() << ": parent="
                  << (entry->parent ? target_name(*entry->parent) : "-")
                  << " children={";
        bool first = true;
        for (const auto& [child, refs] : entry->children) {
          (void)refs;
          std::cout << (first ? "" : ", ") << target_name(child);
          first = false;
        }
        std::cout << "}\n";
      }
    }
  } else if (cmd == "show-grib") {
    Domain& d = s.domain(words[1]);
    std::cout << "G-RIB at " << words[1] << ":";
    for (const auto& [prefix, route] :
         d.speaker().rib(bgp::RouteType::kGroup).best_routes()) {
      std::cout << " " << prefix.to_string() << "(AS" << route.origin_as
                << ")";
    }
    std::cout << "\n";
  } else if (cmd == "show-pool") {
    Domain& d = s.domain(words[1]);
    std::cout << "MASC pool at " << words[1] << ":";
    for (const masc::ClaimedPrefix& p :
         d.masc_node().pool().prefixes()) {
      std::cout << " " << p.prefix.to_string()
                << (p.active ? "" : "(draining)");
    }
    std::cout << "\n";
  } else if (cmd == "expect") {
    Domain& d = s.domain(words[1]);
    const int want_copies = std::stoi(words[2]);
    const auto& got = s.last_send[&d];
    bool ok = static_cast<int>(got.size()) == want_copies;
    if (ok && words.size() > 3 && want_copies > 0) {
      ok = got[0] == std::stoi(words[3]);
    }
    std::cout << (ok ? "  OK   " : "  FAIL ") << words[1] << ": "
              << got.size() << " copies";
    if (!got.empty()) std::cout << ", " << got[0] << " hops";
    std::cout << "\n";
    if (!ok) ++s.failures;
  } else {
    throw std::runtime_error("unknown command '" + cmd + "'");
  }
}

const char* kDemoScript = R"(
# Built-in demo: a diamond with a failure and repair.
domain root
domain left
domain right
domain member
link root left
link root right
link left member
link right member
originate root 224.0.128.0/24
announce root
settle
join member 224.0.128.1
settle
show-tree 224.0.128.1
send root 224.0.128.1
expect member 1 2
link-down left member
link-down right member
settle
send root 224.0.128.1
expect member 0
link-up left member
link-up right member
settle
leave member 224.0.128.1
settle
join member 224.0.128.1
settle
send root 224.0.128.1
expect member 1 2
)";

}  // namespace

int main(int argc, char** argv) {
  std::string script_path;
  std::string metrics_out;
  std::string metrics_jsonl = "metrics.jsonl";
  std::string span_out;
  std::string trace_out;
  std::string trace_level;
  double metrics_every = 0.0;
  bool profile_steps = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--metrics-every") {
      metrics_every = std::stod(next());
      if (metrics_every <= 0.0) {
        std::cerr << "--metrics-every needs a positive period\n";
        return 1;
      }
    } else if (arg == "--metrics-jsonl") {
      metrics_jsonl = next();
    } else if (arg == "--span-out") {
      span_out = next();
    } else if (arg == "--profile-steps") {
      profile_steps = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--trace-level") {
      trace_level = next();
    } else {
      script_path = arg;
    }
  }

  if (trace_level == "info") {
    obs::tracer().level() = obs::TraceLevel::kInfo;
  } else if (trace_level == "debug") {
    obs::tracer().level() = obs::TraceLevel::kDebug;
  } else if (!trace_level.empty()) {
    std::cerr << "bad --trace-level '" << trace_level << "'\n";
    return 1;
  }
  std::ofstream trace_file;
  if (!trace_out.empty()) {
    trace_file.open(trace_out);
    if (!trace_file) {
      std::cerr << "cannot open " << trace_out << "\n";
      return 1;
    }
    obs::tracer().add_sink(std::make_shared<obs::JsonlSink>(trace_file));
    if (trace_level.empty()) {
      obs::tracer().level() = obs::TraceLevel::kInfo;
    }
  }

  std::istringstream demo(kDemoScript);
  std::ifstream file;
  std::istream* in = &demo;
  if (!script_path.empty()) {
    file.open(script_path);
    if (!file) {
      std::cerr << "cannot open " << script_path << "\n";
      return 1;
    }
    in = &file;
  }
  Scenario scenario;
  std::ofstream series_file;
  if (metrics_every > 0.0) {
    series_file.open(metrics_jsonl);
    if (!series_file) {
      std::cerr << "cannot open " << metrics_jsonl << "\n";
      return 1;
    }
    scenario.metrics_every = net::SimTime::seconds_f(metrics_every);
    scenario.metrics_series = &series_file;
  }
  std::ofstream span_file;
  std::unique_ptr<obs::JsonlSpanSink> span_sink;
  if (!span_out.empty()) {
    span_file.open(span_out);
    if (!span_file) {
      std::cerr << "cannot open " << span_out << "\n";
      return 1;
    }
    span_sink = std::make_unique<obs::JsonlSpanSink>(span_file);
    scenario.net.network().set_span_sink(span_sink.get());
  }
  if (profile_steps) scenario.net.enable_step_profiling();
  std::string line;
  int line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::vector<std::string> words;
    std::string word;
    while (fields >> word) words.push_back(word);
    if (words.empty()) continue;
    try {
      run_command(scenario, words);
    } catch (const std::exception& error) {
      std::cerr << "line " << line_no << ": " << error.what() << "\n";
      return 1;
    }
  }
  if (scenario.metrics_series != nullptr) {
    // Final sample, so the series always covers the end of the run.
    scenario.net.metrics_snapshot().write_jsonl(*scenario.metrics_series);
    std::cout << "(metrics time series written to " << metrics_jsonl
              << ")\n";
  }
  if (span_sink != nullptr) {
    std::cout << "(message spans written to " << span_out << ")\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot open " << metrics_out << "\n";
      return 1;
    }
    scenario.net.metrics_snapshot().write_json(out);
    std::cout << "(metrics snapshot written to " << metrics_out << ")\n";
  }
  if (scenario.failures > 0) {
    std::cerr << scenario.failures << " expectation(s) failed\n";
    return 1;
  }
  return 0;
}
