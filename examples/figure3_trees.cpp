// Figure 3 walk-through: BGMP bidirectional shared trees and
// source-specific branches on the paper's 8-domain topology.
//
//           D        E
//           |        |
//          A4--A3   A1            domain A: borders A1..A4
//           |    \  /
//    F2-----+    (A)              F2--A4 is the Figure-3(b) shortcut
//           |     |
//          (F)   A2--C1 (C)--C2
//           |              |
//    F1----B2 (B)         G1 (G) G2---H1 (H)
//           |
//          B1 = root side
//
// Part (a): group 224.0.128.1 rooted in B; members in B, C, D, F, H. A
// non-member host in E sends; the packet travels toward the root domain
// and fans out over the bidirectional tree.
//
// Part (b): a source S in D sends. F's shared-tree router is F1, but F's
// shortest path to S is via F2 — the first packet is encapsulated F1→F2,
// F2 builds a source-specific branch toward D, and subsequent packets
// take the short path while the encapsulated path is pruned.
#include <iostream>

#include "core/domain.hpp"
#include "core/internet.hpp"

namespace {

using core::Domain;
using core::Group;

const Group kGroup = net::Ipv4Addr::parse("224.0.128.1");

std::string target_name(const bgmp::TargetKey& t) {
  return t.kind == bgmp::TargetKey::Kind::kMigp ? "MIGP" : t.peer->name();
}

void show_entry(Domain& d, std::size_t border) {
  bgmp::Router& r = d.bgmp_router(border);
  const bgmp::GroupEntry* entry = r.star_entry(kGroup);
  if (entry == nullptr) return;
  std::cout << "  " << r.name() << ": parent="
            << (entry->parent ? target_name(*entry->parent) : "-")
            << " children={";
  bool first = true;
  for (const auto& [child, refs] : entry->children) {
    (void)refs;
    if (!first) std::cout << ", ";
    first = false;
    std::cout << target_name(child);
  }
  std::cout << "}\n";
}

topology::Graph mesh(std::size_t n) {
  topology::Graph g(n);
  for (topology::NodeId i = 0; i < n; ++i) {
    for (topology::NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

}  // namespace

int main() {
  core::Internet net;
  // Domain A with four border routers A1..A4 (indices 0..3).
  Domain& a = net.add_domain({.id = 10,
                              .name = "A",
                              .internal_graph = mesh(4),
                              .borders = {0, 1, 2, 3}});
  Domain& b = net.add_domain({.id = 20,
                              .name = "B",
                              .internal_graph = mesh(2),
                              .borders = {0, 1}});
  Domain& c = net.add_domain({.id = 30,
                              .name = "C",
                              .internal_graph = mesh(2),
                              .borders = {0, 1}});
  Domain& d = net.add_domain({.id = 40, .name = "D"});
  Domain& e = net.add_domain({.id = 50, .name = "E"});
  Domain& f = net.add_domain({.id = 60,
                              .name = "F",
                              .internal_graph = mesh(2),
                              .borders = {0, 1}});
  Domain& g = net.add_domain({.id = 70,
                              .name = "G",
                              .internal_graph = mesh(2),
                              .borders = {0, 1}});
  Domain& h = net.add_domain({.id = 80, .name = "H"});

  // Figure-3 links with realistic provider/customer relationships and
  // Gao–Rexford export policy throughout (the backbone A provides transit
  // to its customers; F is multihomed: a customer of both B and — via the
  // Figure-3(b) shortcut — of A). Border indices: A1=0, A2=1, A3=2,
  // A4=3; B1=0, B2=1; C1=0, C2=1; F1=0, F2=1; G1=0, G2=1.
  const auto gr = bgp::ExportPolicy::kGaoRexford;
  const auto ms = net::SimTime::milliseconds(10);
  net.link(e, a, bgp::Relationship::kProvider, 0, 0, ms, gr, gr);  // E1--A1
  net.link(c, a, bgp::Relationship::kProvider, 0, 1, ms, gr, gr);  // C1--A2
  net.link(b, a, bgp::Relationship::kProvider, 0, 2, ms, gr, gr);  // B1--A3
  net.link(d, a, bgp::Relationship::kProvider, 0, 3, ms, gr, gr);  // D1--A4
  net.link(f, b, bgp::Relationship::kProvider, 0, 1, ms, gr, gr);  // F1--B2
  net.link(g, c, bgp::Relationship::kProvider, 0, 1, ms, gr, gr);  // G1--C2
  net.link(h, g, bgp::Relationship::kProvider, 0, 1, ms, gr, gr);  // H1--G2
  net.link(f, a, bgp::Relationship::kProvider, 1, 3, ms, gr, gr);  // F2--A4

  for (Domain* dom : {&a, &b, &c, &d, &e, &f, &g, &h}) {
    dom->announce_unicast();
  }
  // B is the root domain for 224.0.128.0/24 (its MASC allocation).
  b.originate_group_range(net::Prefix::parse("224.0.128.0/24"));
  net.settle();

  net.set_delivery_observer([](const core::Delivery& del) {
    std::cout << "    -> members in " << del.domain->name() << " ("
              << del.hops << " inter-domain hops)\n";
  });

  std::cout << "== Part (a): members join; the bidirectional tree forms ==\n";
  b.host_join(kGroup);
  c.host_join(kGroup);
  d.host_join(kGroup);
  f.host_join(kGroup);
  h.host_join(kGroup);
  net.settle();
  std::cout << "(*,G) entries for " << kGroup.to_string() << ":\n";
  for (std::size_t i = 0; i < 4; ++i) show_entry(a, i);
  for (Domain* dom : {&b, &c, &f, &g}) {
    for (std::size_t i = 0; i < 2; ++i) show_entry(*dom, i);
  }
  show_entry(d, 0);
  show_entry(h, 0);

  std::cout << "\nA non-member host in E sends one packet:\n";
  e.send(kGroup);
  net.settle();

  std::cout << "\n== Part (b): source S in D; F builds a branch via F2 ==\n";
  const net::Ipv4Addr source = d.host_address(1);
  std::cout << "first packet from S=" << source.to_string()
            << " (via the shared tree; F1 encapsulates to F2):\n";
  d.send(kGroup);
  net.settle();
  const bgmp::SourceEntry* branch =
      f.bgmp_router(1).source_entry(source, kGroup);
  std::cout << "F2's (S,G) entry: "
            << (branch != nullptr && branch->parent
                    ? "parent=" + target_name(*branch->parent)
                    : "(none)")
            << "\n";
  std::cout << "second packet from S (native via the branch D1->A4->F2):\n";
  d.send(kGroup);
  net.settle();
  return 0;
}
