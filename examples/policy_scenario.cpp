// Multicast policy as selective propagation of group routes (§2, §4.2).
//
// Topology (all Gao–Rexford export policy):
//
//    origin ──customer──> providerA ──lateral── providerB ──lateral── providerC
//                                                                        │
//                                                       member ──customer┘
//
// providerB learns the origin's group route from its lateral peer A, and
// — policy! — will NOT re-export it to its other lateral C. The member
// hanging off C therefore cannot resolve the group's root domain and the
// join dies, with zero configuration beyond the peering relationships.
// Making C a *customer* of B (a payment relationship) flips the export
// rule and the tree forms.
#include <iostream>

#include "core/domain.hpp"
#include "core/internet.hpp"

namespace {

const core::Group kGroup = net::Ipv4Addr::parse("224.1.0.1");

void report(core::Domain& member, core::Domain& origin, bool delivered) {
  std::cout << "  member in " << member.name() << " "
            << (delivered ? "RECEIVED" : "did not receive")
            << " data from " << origin.name() << "\n";
}

bool try_scenario(bgp::Relationship b_sees_c) {
  core::Internet net;
  core::Domain& origin = net.add_domain({.id = 1, .name = "origin"});
  core::Domain& a = net.add_domain({.id = 2, .name = "providerA"});
  core::Domain& b = net.add_domain({.id = 3, .name = "providerB"});
  core::Domain& c = net.add_domain({.id = 4, .name = "providerC"});
  core::Domain& member = net.add_domain({.id = 5, .name = "member"});

  const auto gr = bgp::ExportPolicy::kGaoRexford;
  const auto ms = net::SimTime::milliseconds(10);
  net.link(a, origin, bgp::Relationship::kCustomer, 0, 0, ms, gr, gr);
  net.link(a, b, bgp::Relationship::kLateral, 0, 0, ms, gr, gr);
  net.link(b, c, b_sees_c, 0, 0, ms, gr, gr);
  net.link(c, member, bgp::Relationship::kCustomer, 0, 0, ms, gr, gr);
  for (core::Domain* d : {&origin, &a, &b, &c, &member}) {
    d->announce_unicast();
  }
  origin.originate_group_range(net::Prefix::parse("224.1.0.0/16"));
  net.settle();

  const bool has_route =
      member.speaker().lookup(bgp::RouteType::kGroup, kGroup).has_value();
  std::cout << "  member's G-RIB "
            << (has_route ? "has a route to the root domain"
                          : "has NO route to the root domain (filtered)")
            << "\n";

  bool delivered = false;
  net.set_delivery_observer(
      [&](const core::Delivery& d) { delivered |= d.domain == &member; });
  member.host_join(kGroup);
  net.settle();
  origin.send(kGroup);
  net.settle();
  report(member, origin, delivered);
  return delivered;
}

}  // namespace

int main() {
  std::cout << "== providerB -- providerC as settlement-free laterals ==\n"
               "(a lateral-learned route is not re-exported to laterals)\n";
  const bool blocked_case = try_scenario(bgp::Relationship::kLateral);

  std::cout << "\n== providerC becomes providerB's customer ==\n"
               "(customers receive all routes)\n";
  const bool allowed_case = try_scenario(bgp::Relationship::kCustomer);

  if (blocked_case || !allowed_case) {
    std::cerr << "unexpected policy outcome\n";
    return 1;
  }
  std::cout << "\nPolicy for multicast is exactly the unicast mechanism: a\n"
               "group route that is not propagated is a root domain that\n"
               "cannot be reached (§4.2).\n";
  return 0;
}
