// Quickstart: the MASC/BGMP architecture end to end in ~60 lines.
//
//   top ---- mid ---- edge        (three domains in a line)
//
// 1. `top` claims multicast address space from 224/4 with MASC.
// 2. `mid` (a customer of `top`) claims a sub-range through the MASC
//    hierarchy; its MAAS leases a group address from it — so `mid` is the
//    group's root domain, and the range travels to every router as a BGP
//    group route.
// 3. A host in `edge` joins: BGMP builds the shared tree toward the root.
// 4. A host in `top` sends: the data follows the bidirectional tree.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/domain.hpp"
#include "core/internet.hpp"

int main() {
  core::Internet net;
  core::Domain& top = net.add_domain({.id = 1, .name = "top"});
  core::Domain& mid = net.add_domain({.id = 2, .name = "mid"});
  core::Domain& edge = net.add_domain({.id = 3, .name = "edge"});
  net.link(top, mid, bgp::Relationship::kCustomer);
  net.link(mid, edge, bgp::Relationship::kCustomer);
  net.masc_parent(mid, top);
  for (core::Domain* d : {&top, &mid, &edge}) d->announce_unicast();

  net.set_delivery_observer([](const core::Delivery& d) {
    std::cout << "  data from " << d.source.to_string() << " delivered in "
              << d.domain->name() << " after " << d.hops
              << " inter-domain hop(s)\n";
  });

  // 1. The top-level domain claims from the whole class-D space (§4.4).
  top.masc_node().set_spaces({net::multicast_space()});
  top.masc_node().request_space(65536);
  net.settle();
  std::cout << "top's MASC range:  "
            << top.masc_node().pool().prefixes()[0].prefix.to_string()
            << "\n";

  // 2. mid's MAAS needs addresses; the claim-collide exchange takes a
  //    48-hour waiting period (simulated time is free).
  (void)mid.create_group();  // triggers the claim
  net.settle();
  const auto lease = mid.create_group();
  if (!lease) {
    std::cerr << "MAAS allocation failed\n";
    return 1;
  }
  std::cout << "mid's MASC range:  "
            << mid.masc_node().pool().prefixes()[0].prefix.to_string()
            << "\ngroup address:     " << lease->address.to_string()
            << "  (root domain: mid)\n";

  // 3. A host in edge joins the group.
  edge.host_join(lease->address);
  net.settle();
  std::cout << "shared tree: edge=" << edge.bgmp_router().on_tree(lease->address)
            << " mid=" << mid.bgmp_router().on_tree(lease->address)
            << " top=" << top.bgmp_router().on_tree(lease->address) << "\n";

  // 4. A (non-member) host in top sends to the group.
  std::cout << "top sends one packet:\n";
  top.send(lease->address);
  net.settle();
  return 0;
}
