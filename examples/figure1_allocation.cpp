// Figure 1 walk-through: MASC address allocation across the paper's
// 8-domain hierarchy, including a claim collision and its resolution.
//
//   Backbones:  A, D, E  (top-level; claim from 224/4)
//   Regionals:  B, C     (children of A)
//   Leaves:     F, G     (customers of B and C)
//
// B and C claim sub-ranges of A's space at the same instant with the
// deterministic first-fit strategy — so they pick the SAME range. C (the
// earlier/lower-id claimant rule) wins; B hears a collision announcement,
// gives up the claim and picks a different range, exactly the §4.1 story.
#include <iostream>

#include "core/domain.hpp"
#include "core/internet.hpp"
#include "obs/trace.hpp"

namespace {

void show_pool(const core::Domain& d, const masc::MascNode& node) {
  std::cout << "  " << d.name() << " holds:";
  if (node.pool().prefixes().empty()) std::cout << " (nothing)";
  for (const masc::ClaimedPrefix& p : node.pool().prefixes()) {
    std::cout << " " << p.prefix.to_string();
  }
  std::cout << "  [" << node.collisions_suffered() << " collision(s)]\n";
}

}  // namespace

int main() {
  obs::tracer().level() = obs::TraceLevel::kInfo;  // narrate the exchange
  core::Internet net;

  core::Domain& a = net.add_domain({.id = 10, .name = "A"});
  core::Domain& b = net.add_domain({.id = 20, .name = "B"});
  core::Domain& c = net.add_domain({.id = 30, .name = "C"});
  core::Domain& d = net.add_domain({.id = 40, .name = "D"});
  core::Domain& e = net.add_domain({.id = 50, .name = "E"});
  core::Domain& f = net.add_domain({.id = 60, .name = "F"});
  core::Domain& g = net.add_domain({.id = 70, .name = "G"});

  // Inter-domain links as in Figure 1.
  net.link(a, d);
  net.link(a, e);
  net.link(d, e);
  net.link(b, a, bgp::Relationship::kProvider);
  net.link(c, a, bgp::Relationship::kProvider);
  net.link(f, b, bgp::Relationship::kProvider);
  net.link(g, c, bgp::Relationship::kProvider);

  // MASC hierarchy: backbones are siblings at the top level; B and C are
  // A's children; F and G claim from B and C.
  net.masc_siblings(a, d);
  net.masc_siblings(a, e);
  net.masc_siblings(d, e);
  net.masc_parent(b, a);
  net.masc_parent(c, a);
  net.masc_parent(f, b);
  net.masc_parent(g, c);
  for (core::Domain* dom : {&a, &b, &c, &d, &e, &f, &g}) {
    dom->announce_unicast();
  }
  a.masc_node().set_spaces({net::multicast_space()});
  d.masc_node().set_spaces({net::multicast_space()});
  e.masc_node().set_spaces({net::multicast_space()});

  std::cout << "== Backbones claim from 224.0.0.0/4 ==\n";
  a.masc_node().request_space(65536);  // the paper's 224.0.0.0/16-sized range
  d.masc_node().request_space(65536);
  e.masc_node().request_space(65536);
  net.settle();
  for (core::Domain* dom : {&a, &d, &e}) show_pool(*dom, dom->masc_node());

  std::cout << "\n== B and C claim simultaneously -> collision ==\n";
  b.masc_node().request_space(256);
  c.masc_node().request_space(256);
  net.settle();
  show_pool(b, b.masc_node());
  show_pool(c, c.masc_node());

  std::cout << "\n== F and G claim from B's and C's ranges ==\n";
  f.masc_node().request_space(128);
  g.masc_node().request_space(128);
  net.settle();
  show_pool(f, f.masc_node());
  show_pool(g, g.masc_node());

  std::cout << "\n== G-RIB at each domain (group routes in BGP) ==\n";
  for (core::Domain* dom : {&a, &b, &c, &d, &e, &f, &g}) {
    std::cout << "  " << dom->name() << ":";
    for (const auto& [prefix, route] :
         dom->speaker().rib(bgp::RouteType::kGroup).best_routes()) {
      std::cout << " " << prefix.to_string() << "(AS" << route.origin_as
                << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\nNote how D and E see only the backbones' aggregates: the\n"
               "children's more-specific ranges are subsumed (§4.3.2).\n";
  return 0;
}
